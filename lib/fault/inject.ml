module Pipesem = Pipeline.Pipesem
module Stall_engine = Pipeline.Stall_engine

(* Re-derive the wires downstream of a mutated one, mirroring the
   equations of {!Pipeline.Stall_engine}: the fault is a single bad
   wire feeding otherwise healthy logic. *)
let rederive ~full ~stall ~rollback =
  let n = Array.length full in
  let rollback_up = Array.make n false in
  let acc = ref false in
  for k = n - 1 downto 0 do
    acc := !acc || rollback.(k);
    rollback_up.(k) <- !acc
  done;
  let ue =
    Array.init n (fun k -> full.(k) && (not stall.(k)) && not rollback_up.(k))
  in
  { Stall_engine.full; stall; rollback; rollback_up; ue }

let build ?(cancel = Exec.Cancel.never) (fault : Mutate.fault) =
  match fault with
  | Mutate.Stuck_hit _ | Mutate.Drop_dhaz _ | Mutate.Mux_swap _ -> None
  | Mutate.Stuck_wire { wire = Mutate.Full; stage; value } ->
    Some
      {
        Pipesem.no_injection with
        Pipesem.inj_fullb =
          (fun ~cycle:_ fullb ->
            let f = Array.copy fullb in
            f.(stage) <- value;
            f);
      }
  | Mutate.Stuck_wire { wire; stage; value } ->
    let perturb (s : Stall_engine.signals) =
      let full = Array.copy s.Stall_engine.full in
      let stall = Array.copy s.Stall_engine.stall in
      let rollback = Array.copy s.Stall_engine.rollback in
      match wire with
      | Mutate.Full -> assert false
      | Mutate.Stall ->
        stall.(stage) <- value;
        rederive ~full ~stall ~rollback
      | Mutate.Rollback ->
        rollback.(stage) <- value;
        rederive ~full ~stall ~rollback
      | Mutate.Update_enable ->
        (* The fault sits on the derived wire itself: nothing is
           downstream of [ue_k] but the clock enables and the next
           full bits, both of which read the mutated record. *)
        let s = rederive ~full ~stall ~rollback in
        s.Stall_engine.ue.(stage) <- value;
        s
    in
    Some
      {
        Pipesem.no_injection with
        Pipesem.inj_compute =
          (fun ~cycle:_ ~compute ~dhaz -> perturb (compute ~dhaz));
      }
  | Mutate.Transient_flip { register; bit; at_cycle } ->
    Some
      {
        Pipesem.no_injection with
        Pipesem.inj_edge =
          (fun ~cycle state ->
            if cycle = at_cycle then
              let v = Machine.State.get_scalar state register in
              let mask =
                Hw.Bitvec.shift_left (Hw.Bitvec.one (Hw.Bitvec.width v)) bit
              in
              Machine.State.set_scalar state register (Hw.Bitvec.logxor v mask));
      }
  | Mutate.Hang { at_cycle } ->
    Some
      {
        Pipesem.no_injection with
        Pipesem.inj_compute =
          (fun ~cycle ~compute ~dhaz ->
            if cycle >= at_cycle then
              while true do
                Exec.Cancel.check cancel;
                Domain.cpu_relax ()
              done;
            compute ~dhaz);
      }

let injection_of_mutant ?cancel (m : Mutate.mutant) =
  build ?cancel m.Mutate.mut_fault
