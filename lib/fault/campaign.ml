module Transform = Pipeline.Transform
module Pipesem = Pipeline.Pipesem
module Json = Obs.Json

type classification = Detected | Masked | Missed | Timed_out | Aborted

type outcome = {
  out_id : string;
  out_fault : string;
  out_class : classification;
  out_evidence : string;
}

type summary = {
  mutants : int;
  detected : int;
  masked : int;
  missed : int;
  timed_out : int;
  aborted : int;
}

let ok s = s.missed = 0 && s.aborted = 0

type target = {
  tgt_tr : Transform.t;
  tgt_compiled : Pipesem.compiled;
      (* compiled once per campaign; serves the golden run and every
         behavioural mutant (their [mut_tr] is physically the target's
         transform — only structural mutants carry a rewritten netlist
         and recompile) *)
  tgt_reference : Machine.Seqsem.trace option;
  tgt_instructions : int;
  tgt_disasm : (int -> string option) option;
  tgt_bmc : ((int list -> Transform.t) * int list * int) option;
  tgt_bmc_load : (int list -> (string * Machine.Value.t) list) option;
}

let make_target ?reference ?(instructions = 200) ?disasm ?bmc ?bmc_load tr =
  {
    tgt_tr = tr;
    tgt_compiled = Pipesem.compile tr;
    tgt_reference = reference;
    tgt_instructions = instructions;
    tgt_disasm = disasm;
    tgt_bmc = bmc;
    tgt_bmc_load = bmc_load;
  }

let class_label = function
  | Detected -> "detected"
  | Masked -> "masked"
  | Missed -> "MISSED"
  | Timed_out -> "timed_out"
  | Aborted -> "aborted"

let class_of_label = function
  | "detected" -> Some Detected
  | "masked" -> Some Masked
  | "MISSED" -> Some Missed
  | "timed_out" -> Some Timed_out
  | "aborted" -> Some Aborted
  | _ -> None

(* The first piece of failure evidence in a verification: a failed
   obligation, a consistency violation, or the liveness verdict. *)
let failure_evidence (v : Core.verification) =
  match
    List.find_opt
      (fun (o : Proof_engine.Obligation.obligation) ->
        match o.Proof_engine.Obligation.ob_status with
        | Proof_engine.Obligation.Failed _ -> true
        | _ -> false)
      v.Core.obligations
  with
  | Some o ->
    let detail =
      match o.Proof_engine.Obligation.ob_status with
      | Proof_engine.Obligation.Failed e -> e
      | _ -> assert false
    in
    Printf.sprintf "obligation %s: %s" o.Proof_engine.Obligation.ob_id detail
  | None ->
    if not (Proof_engine.Consistency.ok v.Core.consistency) then
      "data-consistency violations on the co-simulation"
    else if not (Proof_engine.Liveness.ok v.Core.liveness) then
      Printf.sprintf "liveness: max gap %d > bound %d"
        v.Core.liveness.Proof_engine.Liveness.max_gap
        v.Core.liveness.Proof_engine.Liveness.bound
    else "verification failed"

(* Classify one mutant: verification stack first; if everything is
   green, compare the faulted run's architecturally visible state
   against the golden (unfaulted) run to separate masked faults from
   proof-engine false negatives. *)
let classify ~cancel ~lanes (t : target) ~golden (m : Mutate.mutant) =
  (* Structural mutants carry their fault in the rewritten netlist and
     need no hooks, but the machine under test is still faulted: pass
     the identity injection so the checkers treat it as such (no
     symbolic strengthening, relaxed control asserts). *)
  let inject =
    match Inject.injection_of_mutant ~cancel m with
    | Some i -> Some i
    | None -> Some Pipesem.no_injection
  in
  let finish out_class out_evidence =
    (* Some checkers accumulate per-cycle evidence; the campaign keeps
       the head (deterministic, checkpoint-friendly). *)
    let cap = 200 in
    let out_evidence =
      if String.length out_evidence <= cap then out_evidence
      else String.sub out_evidence 0 cap ^ " ...[truncated]"
    in
    {
      out_id = m.Mutate.mut_id;
      out_fault = Format.asprintf "%a" Mutate.pp_fault m.Mutate.mut_fault;
      out_class;
      out_evidence;
    }
  in
  (* A behavioural mutant's transform is physically the target's
     (only the injection hooks differ), so the target's precompiled
     plan serves it; a structural mutant's rewritten netlist must be
     recompiled. *)
  let compiled =
    if m.Mutate.mut_tr == t.tgt_tr then Some t.tgt_compiled else None
  in
  match
    Core.verify_result ?reference:t.tgt_reference ?compiled
      ~max_instructions:t.tgt_instructions ?inject ~cancel
      ?disasm:t.tgt_disasm m.Mutate.mut_tr
  with
  | Error (e : Core.verify_error) ->
    finish Detected
      (Printf.sprintf "verification aborted during %s: %s" e.Core.phase
         e.Core.message)
  | Ok v when not (Core.verified v) -> finish Detected (failure_evidence v)
  | Ok _ -> (
    let bmc_verdict =
      match t.tgt_bmc with
      | None -> None
      | Some (build, alphabet, length) ->
        let build program = Mutate.rewrite m.Mutate.mut_fault (build program) in
        (* With a load function the sweep is batched: [build] (and the
           fault rewrite) runs once per mutant instead of once per
           program — see {!Proof_engine.Bmc.exhaustive}.  [lanes]
           reaches the structural mutants only: behavioural mutants
           carry injection hooks, which the lane engine refuses (BMC
           falls back to the scalar batched sweep for them). *)
        let o =
          Proof_engine.Bmc.exhaustive ~max_failures:1 ?inject ~lanes ~cancel
            ?load:t.tgt_bmc_load ~build ~alphabet ~length ()
        in
        if Proof_engine.Bmc.ok o then None
        else
          Some
            (match o.Proof_engine.Bmc.failures with
            | (program, reason) :: _ ->
              Printf.sprintf "bmc: program [%s]: %s"
                (String.concat "; " (List.map string_of_int program))
                reason
            | [] -> "bmc: failure")
    in
    match bmc_verdict with
    | Some evidence -> finish Detected evidence
    | None -> (
      match
        match compiled with
        | Some c ->
          (* Session path: the faulted run reuses this domain's cached
             instance of the target's plan (reset on entry). *)
          Pipesem.run_session ?inject ~cancel
            ~stop_after:t.tgt_instructions (Pipesem.local_session c)
        | None ->
          Pipesem.run ?inject ~cancel ~stop_after:t.tgt_instructions
            m.Mutate.mut_tr
      with
      | exception Exec.Cancel.Cancelled -> raise Exec.Cancel.Cancelled
      | exception e ->
        finish Missed
          ("verification green but the faulted run aborted: "
          ^ Printexc.to_string e)
      | faulted ->
        let spec = m.Mutate.mut_tr.Transform.machine in
        let visible st = Machine.State.snapshot_visible spec st in
        let mine = visible faulted.Pipesem.state in
        if Machine.State.equal_on golden mine then
          finish Masked "visible state identical to the golden run"
        else
          finish Missed
            (Printf.sprintf
               "verification green but visible state diverges from the \
                golden run on: %s"
               (String.concat ", " (Machine.State.diff golden mine)))))

(* Checkpoint file (schema "fault-campaign/1"). *)

let to_json outcomes =
  Json.Obj
    [
      ("schema", Json.String "fault-campaign/1");
      ( "results",
        Json.List
          (List.map
             (fun o ->
               Json.Obj
                 [
                   ("id", Json.String o.out_id);
                   ("fault", Json.String o.out_fault);
                   ("class", Json.String (class_label o.out_class));
                   ("evidence", Json.String o.out_evidence);
                 ])
             outcomes) );
    ]

let of_json j =
  match Json.member "schema" j with
  | Some (Json.String "fault-campaign/1") -> (
    match Option.bind (Json.member "results" j) Json.to_list_opt with
    | None -> Error "fault-campaign: missing results"
    | Some rs ->
      let parse r =
        let str k = Option.bind (Json.member k r) Json.to_string_opt in
        match (str "id", str "fault", str "class", str "evidence") with
        | Some id, Some fault, Some cls, Some evidence -> (
          match class_of_label cls with
          | Some c ->
            Ok
              {
                out_id = id;
                out_fault = fault;
                out_class = c;
                out_evidence = evidence;
              }
          | None -> Error ("fault-campaign: unknown class " ^ cls))
        | _ -> Error "fault-campaign: malformed result"
      in
      List.fold_right
        (fun r acc ->
          match (parse r, acc) with
          | Ok o, Ok os -> Ok (o :: os)
          | (Error _ as e), _ -> e
          | _, (Error _ as e) -> e)
        rs (Ok []))
  | _ -> Error "fault-campaign: unknown schema"

let summarize outcomes =
  List.fold_left
    (fun s o ->
      let s = { s with mutants = s.mutants + 1 } in
      match o.out_class with
      | Detected -> { s with detected = s.detected + 1 }
      | Masked -> { s with masked = s.masked + 1 }
      | Missed -> { s with missed = s.missed + 1 }
      | Timed_out -> { s with timed_out = s.timed_out + 1 }
      | Aborted -> { s with aborted = s.aborted + 1 })
    { mutants = 0; detected = 0; masked = 0; missed = 0; timed_out = 0;
      aborted = 0 }
    outcomes

let breakdown s =
  [
    ("mutants", float_of_int s.mutants);
    ("detected", float_of_int s.detected);
    ("masked", float_of_int s.masked);
    ("missed", float_of_int s.missed);
    ("timed_out", float_of_int s.timed_out);
    ("aborted", float_of_int s.aborted);
  ]

let run ?pool ?timeout_s ?checkpoint ?(resume = false) ?metrics
    ?(lanes = false) (t : target) mutants =
  Obs.Span.with_span "fault.campaign" @@ fun () ->
  let prior = Hashtbl.create 16 in
  (match (checkpoint, resume) with
  | Some path, true when Sys.file_exists path -> (
    match Result.bind (Json.read_file ~path) of_json with
    | Ok outcomes ->
      List.iter (fun o -> Hashtbl.replace prior o.out_id o) outcomes
    | Error _ -> ())
  | _ -> ());
  (* One golden (unfaulted) run serves every mutant's masked-vs-missed
     comparison; it replays the target's precompiled plan. *)
  let golden =
    let r =
      Pipesem.run_compiled ~stop_after:t.tgt_instructions t.tgt_compiled
    in
    Machine.State.snapshot_visible t.tgt_tr.Transform.machine r.Pipesem.state
  in
  let results = Hashtbl.copy prior in
  let todo =
    List.filter (fun m -> not (Hashtbl.mem prior m.Mutate.mut_id)) mutants
  in
  let save () =
    match checkpoint with
    | None -> ()
    | Some path ->
      let done_ =
        List.filter_map
          (fun m -> Hashtbl.find_opt results m.Mutate.mut_id)
          mutants
      in
      Json.write_file ~path (to_json done_)
  in
  let drive pool =
    let batch = max 1 (2 * Exec.Pool.size pool) in
    let rec chunks = function
      | [] -> []
      | xs ->
        let rec split n = function
          | rest when n = 0 -> ([], rest)
          | [] -> ([], [])
          | x :: rest ->
            let a, b = split (n - 1) rest in
            (x :: a, b)
        in
        let c, rest = split batch xs in
        c :: chunks rest
    in
    List.iter
      (fun chunk ->
        let rs =
          Exec.Pool.map_result ?timeout_s pool
            (fun ~cancel m -> classify ~cancel ~lanes t ~golden m)
            chunk
        in
        List.iter2
          (fun (m : Mutate.mutant) r ->
            let o =
              match r with
              | Exec.Pool.Done o -> o
              | Exec.Pool.Timed_out _ ->
                {
                  out_id = m.Mutate.mut_id;
                  out_fault =
                    Format.asprintf "%a" Mutate.pp_fault m.Mutate.mut_fault;
                  out_class = Timed_out;
                  out_evidence = "cancelled by the per-mutant timeout";
                }
              | Exec.Pool.Failed (e, _) ->
                {
                  out_id = m.Mutate.mut_id;
                  out_fault =
                    Format.asprintf "%a" Mutate.pp_fault m.Mutate.mut_fault;
                  out_class = Aborted;
                  out_evidence = "classification died: " ^ Printexc.to_string e;
                }
              | Exec.Pool.Cancelled _ ->
                {
                  out_id = m.Mutate.mut_id;
                  out_fault =
                    Format.asprintf "%a" Mutate.pp_fault m.Mutate.mut_fault;
                  out_class = Aborted;
                  out_evidence = "classification cancelled explicitly";
                }
            in
            Hashtbl.replace results m.Mutate.mut_id o)
          chunk rs;
        save ())
      (chunks todo)
  in
  (match pool with
  | Some p -> drive p
  | None -> Exec.Pool.with_pool ~size:1 drive);
  let outcomes =
    List.filter_map (fun m -> Hashtbl.find_opt results m.Mutate.mut_id) mutants
  in
  let s = summarize outcomes in
  (match metrics with
  | None -> ()
  | Some reg ->
    List.iter
      (fun (name, v) ->
        Obs.Metrics.add (Obs.Metrics.counter reg ("fault." ^ name))
          (int_of_float v))
      (breakdown s));
  (outcomes, s)

let pp_outcome ppf o =
  Format.fprintf ppf "%-10s %-28s %s" (class_label o.out_class) o.out_id
    o.out_evidence

let pp_summary ppf s =
  Format.fprintf ppf
    "%d mutants: %d detected, %d masked, %d MISSED, %d timed out, %d aborted"
    s.mutants s.detected s.masked s.missed s.timed_out s.aborted
