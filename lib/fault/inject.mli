(** Behavioural fault injectors (detection-coverage campaigns,
    step 1b).

    Turns the behavioural {!Mutate.fault}s — the ones that live on
    wires the cycle driver computes rather than in the synthesized
    netlist — into {!Pipeline.Pipesem.injection} hooks.  Structural
    faults are carried by the rewritten netlist ({!Mutate.rewrite})
    and need no injection. *)

val build :
  ?cancel:Exec.Cancel.token ->
  Mutate.fault ->
  Pipeline.Pipesem.injection option
(** [None] for structural faults.  Stuck full bits land in
    [inj_fullb]; stuck stall/ue/rollback wires in [inj_compute], with
    the dependent wires ([rollback'], [ue], and through them the
    next full bits) re-derived coherently so the fault behaves like a
    single defective wire, not an inconsistent engine state.
    Transient flips land in [inj_edge].

    [Hang] spins inside [inj_compute] from its cycle on, polling
    [cancel] (default {!Exec.Cancel.never} — it then spins forever):
    the campaign's per-task timeout token is what unwedges it, by
    raising {!Exec.Cancel.Cancelled}. *)

val injection_of_mutant :
  ?cancel:Exec.Cancel.token ->
  Mutate.mutant ->
  Pipeline.Pipesem.injection option
(** [build] on the mutant's fault. *)
