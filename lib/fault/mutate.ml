module Transform = Pipeline.Transform
module Expr = Hw.Expr

type wire = Full | Stall | Update_enable | Rollback

type fault =
  | Stuck_wire of { wire : wire; stage : int; value : bool }
  | Stuck_hit of { signal : string; value : bool }
  | Drop_dhaz of { signal : string }
  | Mux_swap of { g_signal : string; hit_a : string; hit_b : string }
  | Transient_flip of { register : string; bit : int; at_cycle : int }
  | Hang of { at_cycle : int }

type mutant = {
  mut_id : string;
  mut_fault : fault;
  mut_tr : Transform.t;
  mut_structural : bool;
}

let wire_name = function
  | Full -> "full"
  | Stall -> "stall"
  | Update_enable -> "ue"
  | Rollback -> "rollback"

let id = function
  | Stuck_wire { wire; stage; value } ->
    Printf.sprintf "%s@%d=%d" (wire_name wire) stage (Bool.to_int value)
  | Stuck_hit { signal; value } ->
    Printf.sprintf "hit:%s=%d" signal (Bool.to_int value)
  | Drop_dhaz { signal } -> Printf.sprintf "dhaz:%s=0" signal
  | Mux_swap { g_signal; hit_a; hit_b } ->
    Printf.sprintf "muxswap:%s:%s<->%s" g_signal hit_a hit_b
  | Transient_flip { register; bit; at_cycle } ->
    Printf.sprintf "flip:%s[%d]@c%d" register bit at_cycle
  | Hang { at_cycle } -> Printf.sprintf "hang@c%d" at_cycle

let structural = function
  | Stuck_hit _ | Drop_dhaz _ | Mux_swap _ -> true
  | Stuck_wire _ | Transient_flip _ | Hang _ -> false

(* Rewrite one synthesized signal definition in place; every later
   definition and every stage write referencing it sees the faulted
   version through plan compilation, exactly as a netlist defect
   would propagate. *)
let rewrite_signal name f (tr : Transform.t) =
  let found = ref false in
  let signals =
    List.map
      (fun (n, e) ->
        if String.equal n name then (
          found := true;
          (n, f e))
        else (n, e))
      tr.Transform.signals
  in
  if not !found then
    invalid_arg (Printf.sprintf "Fault.Mutate: no synthesized signal %s" name);
  { tr with Transform.signals }

let rewrite fault tr =
  match fault with
  | Stuck_hit { signal; value } ->
    rewrite_signal signal (fun _ -> Expr.bool_of value) tr
  | Drop_dhaz { signal } -> rewrite_signal signal (fun _ -> Expr.fls) tr
  | Mux_swap { g_signal; hit_a; hit_b } ->
    rewrite_signal g_signal
      (Expr.subst (fun n ->
           if String.equal n hit_a then Some (Expr.input hit_b 1)
           else if String.equal n hit_b then Some (Expr.input hit_a 1)
           else None))
      tr
  | Stuck_wire _ | Transient_flip _ | Hang _ -> tr

let apply fault tr =
  {
    mut_id = id fault;
    mut_fault = fault;
    mut_tr = rewrite fault tr;
    mut_structural = structural fault;
  }

let enumerate ?(transients = 8) ?(seed = 0) ?(max_cycle = 30) ?(hang = false)
    (tr : Transform.t) =
  let n = tr.Transform.base.Machine.Spec.n_stages in
  let speculates = tr.Transform.speculations <> [] in
  let wires =
    List.concat_map
      (fun stage ->
        List.concat_map
          (fun wire ->
            let polarities =
              match wire with
              | Full -> if stage = 0 then [] else [ false; true ]
              | Stall | Update_enable -> [ false; true ]
              | Rollback -> if speculates then [ false; true ] else [ true ]
            in
            List.map (fun value -> Stuck_wire { wire; stage; value }) polarities)
          [ Full; Stall; Update_enable; Rollback ])
      (List.init n Fun.id)
  in
  let forwarding =
    List.concat_map
      (fun (r : Transform.rule) ->
        let hits =
          List.concat_map
            (fun (s : Transform.source) ->
              [
                Stuck_hit { signal = s.Transform.hit_signal; value = false };
                Stuck_hit { signal = s.Transform.hit_signal; value = true };
              ])
            r.Transform.sources
        in
        let drop = [ Drop_dhaz { signal = r.Transform.dhaz_signal } ] in
        let swap =
          match r.Transform.g_signal with
          | None -> []
          | Some g -> (
            match
              List.filter
                (fun (s : Transform.source) -> s.Transform.cand_signal <> None)
                r.Transform.sources
            with
            | a :: b :: _ ->
              [
                Mux_swap
                  {
                    g_signal = g;
                    hit_a = a.Transform.hit_signal;
                    hit_b = b.Transform.hit_signal;
                  };
              ]
            | _ -> [])
        in
        hits @ drop @ swap)
      tr.Transform.rules
  in
  let flips =
    let scalars =
      List.filter
        (fun (r : Machine.Spec.register) -> r.Machine.Spec.kind = Machine.Spec.Simple)
        tr.Transform.machine.Machine.Spec.registers
    in
    match scalars with
    | [] -> []
    | _ ->
      let rng = Random.State.make [| seed; 0x5eed |] in
      let regs = Array.of_list scalars in
      List.init transients (fun _ ->
          let r = regs.(Random.State.int rng (Array.length regs)) in
          Transient_flip
            {
              register = r.Machine.Spec.reg_name;
              bit = Random.State.int rng r.Machine.Spec.width;
              at_cycle = 1 + Random.State.int rng max_cycle;
            })
  in
  let hang = if hang then [ Hang { at_cycle = 5 } ] else [] in
  List.map (fun f -> apply f tr) (wires @ forwarding @ flips @ hang)

let sample ~seed ~count xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  let rng = Random.State.make [| seed; 0xca4d |] in
  (* Fisher–Yates prefix: positions [0, count) end up uniformly
     sampled and ordered by the seed alone. *)
  let count = min count n in
  for i = 0 to count - 1 do
    let j = i + Random.State.int rng (n - i) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list (Array.sub a 0 count)

let pp_fault ppf f =
  Format.pp_print_string ppf
    (match f with
    | Stuck_wire { wire; stage; value } ->
      Printf.sprintf "stall-engine wire %s_%d stuck at %d" (wire_name wire)
        stage (Bool.to_int value)
    | Stuck_hit { signal; value } ->
      Printf.sprintf "forwarding hit %s stuck at %d" signal (Bool.to_int value)
    | Drop_dhaz { signal } ->
      Printf.sprintf "interlock request %s dropped" signal
    | Mux_swap { g_signal; hit_a; hit_b } ->
      Printf.sprintf "forwarding mux %s selects %s and %s crossed" g_signal
        hit_a hit_b
    | Transient_flip { register; bit; at_cycle } ->
      Printf.sprintf "transient flip of %s bit %d after cycle %d" register bit
        at_cycle
    | Hang { at_cycle } ->
      Printf.sprintf "engine wedged from cycle %d" at_cycle)
