type signals = {
  full : bool array;
  stall : bool array;
  rollback : bool array;
  rollback_up : bool array;
  ue : bool array;
}

let compute ~fullb ~dhaz ~ext ~mispredict =
  let n = Array.length fullb in
  let full = Array.init n (fun k -> k = 0 || fullb.(k)) in
  let stall = Array.make n false in
  for k = n - 1 downto 0 do
    let below = if k = n - 1 then false else stall.(k + 1) in
    stall.(k) <- (dhaz.(k) || ext.(k) || below) && full.(k)
  done;
  let rollback =
    Array.init n (fun k ->
        full.(k) && (not stall.(k)) && mispredict ~stage:k ~stalled:stall.(k))
  in
  let rollback_up = Array.make n false in
  for k = n - 1 downto 0 do
    let above = if k = n - 1 then false else rollback_up.(k + 1) in
    rollback_up.(k) <- rollback.(k) || above
  done;
  let ue =
    Array.init n (fun k -> full.(k) && (not stall.(k)) && not rollback_up.(k))
  in
  { full; stall; rollback; rollback_up; ue }

let next_fullb s =
  let n = Array.length s.full in
  Array.init n (fun k ->
      if k = 0 then true
      else (s.ue.(k - 1) || s.stall.(k)) && not s.rollback_up.(k))

(* Lane-parallel mirror of [compute]/[next_fullb]: every array entry
   is a packed word over the lanes in [mask] (bit l = lane l).  One
   word op per stage serves the whole pack.  [mispredict.(k)] is the
   raw per-lane misprediction word of stage k (the OR of that stage's
   speculation comparators); the [land lnot stall] conjunct below is
   the scalar path's [not stalled] guard.  All outputs are masked. *)
type lane_signals = {
  l_full : int array;
  l_stall : int array;
  l_rollback : int array;
  l_rollback_up : int array;
  l_ue : int array;
}

let compute_lanes ~mask ~fullb ~dhaz ~ext ~mispredict =
  let n = Array.length fullb in
  let full = Array.init n (fun k -> if k = 0 then mask else fullb.(k) land mask) in
  let stall = Array.make n 0 in
  for k = n - 1 downto 0 do
    let below = if k = n - 1 then 0 else stall.(k + 1) in
    stall.(k) <- (dhaz.(k) lor ext.(k) lor below) land full.(k)
  done;
  let rollback =
    Array.init n (fun k -> full.(k) land lnot stall.(k) land mispredict.(k))
  in
  let rollback_up = Array.make n 0 in
  for k = n - 1 downto 0 do
    let above = if k = n - 1 then 0 else rollback_up.(k + 1) in
    rollback_up.(k) <- rollback.(k) lor above
  done;
  let ue =
    Array.init n (fun k ->
        full.(k) land lnot stall.(k) land lnot rollback_up.(k))
  in
  {
    l_full = full;
    l_stall = stall;
    l_rollback = rollback;
    l_rollback_up = rollback_up;
    l_ue = ue;
  }

let next_fullb_lanes ~mask s =
  let n = Array.length s.l_full in
  Array.init n (fun k ->
      if k = 0 then mask
      else (s.l_ue.(k - 1) lor s.l_stall.(k)) land lnot s.l_rollback_up.(k)
           land mask)

let exprs ~n_stages ~dhaz ~mispredict =
  Obs.Span.with_span "stall_engine.exprs" @@ fun () ->
  let open Hw.Expr in
  let full k = if k = 0 then tru else input (Transform.full_signal k) 1 in
  let ext k = input (Transform.ext_signal k) 1 in
  let stall_name k = Printf.sprintf "$stall_%d" k in
  let rb_name k = Printf.sprintf "$rollback_%d" k in
  let rbp_name k = Printf.sprintf "$rollbackp_%d" k in
  let ue_name k = Printf.sprintf "$ue_%d" k in
  let fullb_next_name k = Printf.sprintf "$fullb_next_%d" k in
  let defs = ref [] in
  let def name e = defs := (name, e) :: !defs in
  for k = n_stages - 1 downto 0 do
    let below =
      if k = n_stages - 1 then fls else input (stall_name (k + 1)) 1
    in
    def (stall_name k)
      (( &&: ) (( ||: ) (( ||: ) (dhaz k) (ext k)) below) (full k))
  done;
  for k = 0 to n_stages - 1 do
    def (rb_name k)
      (( &&: ) (full k) (( &&: ) (not_ (input (stall_name k) 1)) (mispredict k)))
  done;
  for k = n_stages - 1 downto 0 do
    let above =
      if k = n_stages - 1 then fls else input (rbp_name (k + 1)) 1
    in
    def (rbp_name k) (( ||: ) (input (rb_name k) 1) above)
  done;
  for k = 0 to n_stages - 1 do
    def (ue_name k)
      (( &&: ) (full k)
         (( &&: )
            (not_ (input (stall_name k) 1))
            (not_ (input (rbp_name k) 1))))
  done;
  for s = 1 to n_stages - 1 do
    def (fullb_next_name s)
      (( &&: )
         (( ||: ) (input (ue_name (s - 1)) 1) (input (stall_name s) 1))
         (not_ (input (rbp_name s) 1)))
  done;
  List.rev !defs
