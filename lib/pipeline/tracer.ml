module Spec = Machine.Spec

let engine_signals n =
  List.concat_map
    (fun k ->
      [
        (Printf.sprintf "full_%d" k, 1);
        (Printf.sprintf "stall_%d" k, 1);
        (Printf.sprintf "dhaz_%d" k, 1);
        (Printf.sprintf "ue_%d" k, 1);
        (Printf.sprintf "rollback_%d" k, 1);
      ])
    (List.init n (fun k -> k))

let trace ?ext ?(registers = []) ?signals ?compiled ~stop_after
    (t : Transform.t) =
  let m = t.Transform.machine in
  let n = m.Spec.n_stages in
  let signals =
    match signals with
    | Some s -> s
    | None -> Array.to_list t.Transform.stage_dhaz
  in
  List.iter
    (fun r ->
      match Spec.find_register m r with
      | { Spec.kind = Spec.Simple; _ } -> ()
      | { Spec.kind = Spec.File _; _ } ->
        invalid_arg (Printf.sprintf "Tracer: %s is a register file" r)
      | exception Not_found ->
        invalid_arg (Printf.sprintf "Tracer: unknown register %s" r))
    registers;
  let sig_width name =
    match List.assoc_opt name t.Transform.signals with
    | Some e -> Hw.Expr.width e
    | None -> invalid_arg (Printf.sprintf "Tracer: unknown signal %s" name)
  in
  let reg_width r = (Spec.find_register m r).Spec.width in
  let declared =
    engine_signals n
    @ List.map (fun r -> (r, reg_width r)) registers
    @ List.map (fun s -> (s, sig_width s)) signals
  in
  let vcd = Hw.Vcd.create declared in
  (* Values are captured pre-edge: the synthesized signals and scalar
     registers through the simulator's signal hook, the stall-engine
     bits from the cycle record; both describe the same cycle. *)
  let pending = ref [] in
  let callbacks =
    {
      Pipesem.no_callbacks with
      Pipesem.on_signals =
        (fun ~cycle:_ lookup ->
          let fetch name = Option.map (fun v -> (name, v)) (lookup name) in
          pending :=
            List.filter_map fetch signals
            @ List.filter_map fetch registers);
      on_cycle =
        (fun r ->
          let bits k =
            [
              (Printf.sprintf "full_%d" k, Hw.Bitvec.of_bool r.Pipesem.full.(k));
              ( Printf.sprintf "stall_%d" k,
                Hw.Bitvec.of_bool r.Pipesem.stall.(k) );
              (Printf.sprintf "dhaz_%d" k, Hw.Bitvec.of_bool r.Pipesem.dhaz.(k));
              (Printf.sprintf "ue_%d" k, Hw.Bitvec.of_bool r.Pipesem.ue.(k));
              ( Printf.sprintf "rollback_%d" k,
                Hw.Bitvec.of_bool r.Pipesem.rollback.(k) );
            ]
          in
          Hw.Vcd.sample vcd
            (List.concat_map bits (List.init n (fun k -> k)) @ !pending));
    }
  in
  let c = match compiled with Some c -> c | None -> Pipesem.compile t in
  let result = Pipesem.run_compiled ?ext ~callbacks ~stop_after c in
  (vcd, result)

let write ~path ?ext ?registers ?signals ?compiled ~stop_after t =
  let vcd, result = trace ?ext ?registers ?signals ?compiled ~stop_after t in
  Hw.Vcd.write_file ~path vcd;
  result
