(** Waveform capture for pipelined simulations.

    Runs the transformed machine and records, per cycle, the stall
    engine signals ([full]/[stall]/[dhaz]/[ue]/[rollback] per stage),
    selected scalar registers, and selected synthesized signals (hits,
    valids, forwarded operands) into a VCD document — the debugging
    view a hardware engineer expects from the generated design. *)

val trace :
  ?ext:Pipesem.ext_model ->
  ?registers:string list ->
  ?signals:string list ->
  ?compiled:Pipesem.compiled ->
  stop_after:int ->
  Transform.t ->
  Hw.Vcd.t * Pipesem.result
(** [registers] are scalar registers of the transformed machine
    (default: none); [signals] are synthesized signal names from
    [Transform.signals] (default: every stage's [dhaz]).  The engine
    signals are always included.  All values are captured pre-edge
    (the compiled simulator's slot-to-name view keeps the lookup
    name-based).  [compiled] reuses an existing evaluation plan for
    the machine instead of compiling a fresh one.
    @raise Invalid_argument for unknown names. *)

val write :
  path:string ->
  ?ext:Pipesem.ext_model ->
  ?registers:string list ->
  ?signals:string list ->
  ?compiled:Pipesem.compiled ->
  stop_after:int ->
  Transform.t ->
  Pipesem.result
