(** Hazard-attribution wiring: an {!Obs.Hazard} consumer built from a
    transformed machine's rule inventory and fed through
    {!Pipesem.callbacks}.

    Per cycle it samples, pre-edge:

    - each rule's [$dhaz_<label>] signal, so a stage's interlock stall
      is attributed to the operand that raised it;
    - each rule's hit signals, so a consuming stage's operand value is
      attributed to the bypass source that actually fed it (the
      priority winner: nearest full stage first, then the
      architectural register read).

    The per-cycle records are folded into the exact CPI decomposition
    of {!Obs.Hazard.decompose}: [CPI = 1 + Σ stall components], with
    integer cycle accounting [cycles = retiring_cycles + Σ lost]. *)

type t

val create : ?base:Pipesem.callbacks -> Transform.t -> t
(** [base] callbacks (e.g. the tracer's) are invoked first on every
    hook, so attribution composes with existing consumers. *)

val callbacks : t -> Pipesem.callbacks

val finalize : t -> Obs.Hazard.summary
(** Flush the last buffered cycle and summarize.  Call once, after the
    simulation returns. *)

val source_label : Transform.source -> string
(** How a bypass source is named in the hit histogram: the forwarding
    register instance (e.g. ["C.2@2"]), ["Din@w"] for the writer stage,
    or ["stall@j"] for a source with no forwarding register.  The
    architectural fallback is ["reg"]. *)

val run :
  ?ext:Pipesem.ext_model ->
  ?max_cycles:int ->
  ?compiled:Pipesem.compiled ->
  stop_after:int ->
  Transform.t ->
  Pipesem.result * Obs.Hazard.summary
(** [Pipesem.run] with attribution attached.  [compiled] reuses an
    existing evaluation plan for the machine. *)
