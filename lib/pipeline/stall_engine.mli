(** The stall engine (paper §3).

    Pure per-cycle signal computation:

    - [full_0 = 1], [full_k = fullb.k] for [k ≥ 1];
    - [stall_k = (dhaz_k ∨ ext_k ∨ stall_{k+1}) ∧ full_k] (the last
      stage has no [stall_{k+1}] term);
    - [rollback'_k = ⋁_{i ≥ k} rollback_i];
    - [ue_k = full_k ∧ ¬stall_k ∧ ¬rollback'_k];
    - [fullb.s := (ue_{s-1} ∨ stall_s) ∧ ¬rollback'_s] for
      [s ∈ 1..n-1].

    The rollback conjunct in the [fullb] update extends the stall
    engine of the paper's reference [12] with the squashing mechanism:
    a squashed stage empties even if it was stalled.  The misspeculation
    comparison itself fires only in a full, unstalled stage, so
    [rollback_k ⟹ full_k ∧ ¬stall_k] is an invariant the simulator
    asserts. *)

type signals = {
  full : bool array;
  stall : bool array;
  rollback : bool array;       (** [rollback_k], per stage *)
  rollback_up : bool array;    (** [rollback'_k], the suffix OR *)
  ue : bool array;
}

val compute :
  fullb:bool array ->
  dhaz:bool array ->
  ext:bool array ->
  mispredict:(stage:int -> stalled:bool -> bool) ->
  signals
(** [fullb.(0)] is ignored (stage 0 is always full).  [mispredict] is
    queried once per stage after stalls are known; it must return
    [false] when the stage is not full or [stalled] (the engine also
    guards this). *)

val next_fullb : signals -> bool array
(** The register update: [fullb'.(s) = (ue.(s-1) ∨ stall.(s)) ∧
    ¬rollback'.(s)]; index 0 is [true]. *)

(** {1 Lane-parallel form}

    The same equations over packed lane words (bit [l] = lane [l]):
    one word op per stage advances every lane in the pack. *)

type lane_signals = {
  l_full : int array;
  l_stall : int array;
  l_rollback : int array;
  l_rollback_up : int array;
  l_ue : int array;
}

val compute_lanes :
  mask:int ->
  fullb:int array ->
  dhaz:int array ->
  ext:int array ->
  mispredict:int array ->
  lane_signals
(** [mask] selects the live lanes; all outputs are masked.
    [mispredict.(k)] is the raw misprediction word of stage [k] (OR of
    the stage's speculation comparators) — the scalar path's
    [not stalled] guard is applied here via [∧ ¬stall]. *)

val next_fullb_lanes : mask:int -> lane_signals -> int array
(** The lane mirror of {!next_fullb}; index 0 is [mask]. *)

val exprs :
  n_stages:int ->
  dhaz:(int -> Hw.Expr.t) ->
  mispredict:(int -> Hw.Expr.t) ->
  (string * Hw.Expr.t) list
(** The same equations as combinational definitions over the
    ["$full_k"] / ["$ext_k"] inputs, for HDL export: yields
    ["$stall_k"], ["$rollback_k"], ["$rollbackp_k"], ["$ue_k"] and
    ["$fullb_next_k"] in dependency order. *)
