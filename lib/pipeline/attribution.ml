let source_label (s : Transform.source) =
  match s.Transform.src_kind with
  | Transform.From_writer -> Printf.sprintf "Din@%d" s.Transform.src_stage
  | Transform.From_chain head -> Printf.sprintf "%s@%d" head s.Transform.src_stage
  | Transform.No_source -> Printf.sprintf "stall@%d" s.Transform.src_stage

type pending = {
  p_record : Pipesem.cycle_record;
  p_ops : string option array;
}

type t = {
  hazard : Obs.Hazard.t;
  mutable sig_ops : string option array;
  mutable sig_wins : (string * int * string) list;
      (* rule label, consumer stage, winning source *)
  mutable buffered : pending option;
  mutable retired_now : int;
  mutable cbs : Pipesem.callbacks;
}

let flush t =
  match t.buffered with
  | None -> ()
  | Some p ->
    let r = p.p_record in
    Obs.Hazard.observe t.hazard ~full:r.Pipesem.full ~stall:r.Pipesem.stall
      ~dhaz:r.Pipesem.dhaz ~ext:r.Pipesem.ext ~rollback:r.Pipesem.rollback
      ~ue:r.Pipesem.ue
      ~operand:(fun k -> p.p_ops.(k))
      ~retired:t.retired_now;
    t.retired_now <- 0;
    t.buffered <- None

let create ?(base = Pipesem.no_callbacks) (tr : Transform.t) =
  let n = tr.Transform.machine.Machine.Spec.n_stages in
  let t =
    {
      hazard = Obs.Hazard.create ~n_stages:n;
      sig_ops = Array.make n None;
      sig_wins = [];
      buffered = None;
      retired_now = 0;
      cbs = Pipesem.no_callbacks;
    }
  in
  let on_signals ~cycle lookup =
    base.Pipesem.on_signals ~cycle lookup;
    let bool_of name =
      match lookup name with
      | Some v -> Hw.Bitvec.to_bool v
      | None -> false
    in
    let ops = Array.make n None in
    let wins = ref [] in
    List.iter
      (fun (r : Transform.rule) ->
        let k = r.Transform.consumer_stage in
        (* First rule (in inventory order) whose interlock fired: the
           operand the stage's dhaz_k is attributed to. *)
        if ops.(k) = None && bool_of r.Transform.dhaz_signal then
          ops.(k) <- Some r.Transform.rule_label;
        if r.Transform.sources <> [] then begin
          let winner =
            match
              List.find_opt
                (fun (s : Transform.source) -> bool_of s.Transform.hit_signal)
                r.Transform.sources
            with
            | Some s -> source_label s
            | None -> "reg"
          in
          wins := (r.Transform.rule_label, k, winner) :: !wins
        end)
      tr.Transform.rules;
    t.sig_ops <- ops;
    t.sig_wins <- !wins
  in
  let on_cycle record =
    base.Pipesem.on_cycle record;
    flush t;
    (* Commit the forwarding wins of consuming stages: the operand was
       actually read only when the consumer updates this cycle. *)
    List.iter
      (fun (rule, k, source) ->
        if record.Pipesem.ue.(k) then Obs.Hazard.record_hit t.hazard ~rule ~source)
      t.sig_wins;
    t.buffered <- Some { p_record = record; p_ops = t.sig_ops }
  in
  let on_edge record state = base.Pipesem.on_edge record state in
  let on_retire ~tag ~kind state =
    base.Pipesem.on_retire ~tag ~kind state;
    t.retired_now <- t.retired_now + 1
  in
  t.cbs <- { Pipesem.on_signals; on_cycle; on_edge; on_retire };
  t

let callbacks t = t.cbs

let finalize t =
  flush t;
  Obs.Hazard.summary t.hazard

let run ?ext ?max_cycles ?compiled ~stop_after tr =
  let t = create tr in
  let c = match compiled with Some c -> c | None -> Pipesem.compile tr in
  let result =
    Pipesem.run_compiled ?ext ~callbacks:t.cbs ?max_cycles ~stop_after c
  in
  (result, finalize t)
