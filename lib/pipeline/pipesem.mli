(** Cycle-accurate simulation of the transformed (pipelined) machine.

    Each cycle:

    + read the full bits, bind the ["$full_k"] / ["$ext_k"] free
      inputs, and evaluate the synthesized signal definitions in order
      (hits, valid bits, forwarded operands [g_k], data hazards);
    + run the stall engine (paper §3) to obtain stalls, rollbacks and
      update enables;
    + for every stage with [ue_k], evaluate its data paths against the
      pre-edge state; for a firing speculation, evaluate its rollback
      writes; commit everything as one clock edge, together with the
      [fullb] and instruction-tag updates.

    Instruction tags track which sequential instruction index occupies
    each stage — the simulator's ground-truth scheduling function,
    which the paper's inductive [I(k,T)] is checked against (see
    {!Schedule}). *)

type ext_model = stage:int -> cycle:int -> bool
(** External stall injection ([ext_k], e.g. slow memory). *)

type retire_kind =
  | Normal                  (** left the last stage via [ue_{n-1}] *)
  | Via_rollback of string  (** retired by a [retires] speculation's
                                rollback writes (precise interrupts) *)

type cycle_record = {
  cycle : int;
  full : bool array;
  stall : bool array;
  dhaz : bool array;
  ext : bool array;
  rollback : bool array;
  ue : bool array;
  tags : int option array;  (** pre-edge instruction tags per stage *)
}

type callbacks = {
  on_signals : cycle:int -> (string -> Hw.Bitvec.t option) -> unit;
      (** after the synthesized combinational signals have been
          evaluated for the cycle, before the stall engine: the lookup
          resolves synthesized signal names, free inputs
          (["$full_k"]/["$ext_k"]) and scalar registers, all pre-edge.
          Used by {!Tracer}. *)
  on_cycle : cycle_record -> unit;
      (** after signal computation, before the clock edge *)
  on_edge : cycle_record -> Machine.State.t -> unit;
      (** after the clock edge: the record describes the cycle that
          just committed (pre-edge tags), the state is post-edge.
          Used by the data-consistency checker. *)
  on_retire : tag:int -> kind:retire_kind -> Machine.State.t -> unit;
      (** after the clock edge of the retiring cycle; the state passed
          is live — snapshot what you need *)
}

val no_callbacks : callbacks

(** {1 Fault injection}

    Hooks that place a fault exactly where it would sit in the
    generated machine; built by [Fault.Inject], consumed by the
    detection-coverage campaigns.  With an injection present, the run
    loop relaxes the control invariants of the unfaulted engine (a
    stage may fire with no instruction in flight — it then simply
    retires nothing) instead of asserting. *)

type injection = {
  inj_fullb : cycle:int -> bool array -> bool array;
      (** applied to the full-bit register {e outputs} before the
          cycle's signal evaluation and the stall engine (stuck-at
          faults on [full_k]); must not mutate its argument *)
  inj_compute :
    cycle:int ->
    compute:(dhaz:bool array -> Stall_engine.signals) ->
    dhaz:bool array ->
    Stall_engine.signals;
      (** middleware around the stall engine: perturb [dhaz] before
          calling [compute] (dropped-interlock faults) or rewrite the
          returned signals (stuck-at faults on [stall_k], [ue_k] and
          the rollback/squash wires) *)
  inj_edge : cycle:int -> Machine.State.t -> unit;
      (** right after the clock edge, before the [on_edge] callback:
          transient single-event bit flips in pipeline registers *)
}

val no_injection : injection
(** The identity injection ([run ?inject:None] behaves identically). *)

type outcome =
  | Completed       (** the requested number of instructions retired *)
  | Deadlocked      (** liveness violation: no progress within the bound *)
  | Out_of_cycles   (** [max_cycles] reached first *)

type stats = {
  cycles : int;
  retired : int;
  fetch_stall_cycles : int;  (** cycles in which stage 0 was stalled *)
  dhaz_cycles : int;   (** cycles in which some stage had a data hazard *)
  ext_cycles : int;    (** cycles in which some stage had an external stall *)
  rollbacks : int;
  squashed : int;      (** instructions evicted (excluding retiring ones) *)
}

type result = {
  outcome : outcome;
  stats : stats;
  state : Machine.State.t;  (** final register state *)
}

type compiled
(** A transformed machine compiled to a single evaluation plan: the
    synthesized signals, every speculation's mispredict predicate, all
    stage writes and all rollback writes share one hash-consed
    instruction tape ({!Hw.Plan}), evaluated once per cycle over
    integer slots instead of re-walking expression trees against a
    string-keyed overlay. *)

val compile : ?optimize:bool -> ?observe:bool -> Transform.t -> compiled
(** Compile once; reuse across {!run_compiled} / {!run_session} calls
    (the plan is immutable — instances are private to sessions).

    [optimize] (default {!Hw.Plan.optimize_default}) runs
    {!Hw.Plan.optimize} on the tape and remaps every captured slot;
    the engines are oblivious to which plan they evaluate.

    [observe] (default [true]) keeps every synthesized signal
    readable by name on the running instance (the [on_signals]
    callback view used by the tracer and hazard attribution).
    [~observe:false] — only meaningful with [optimize] — keeps just
    the hazard signals the cycle driver polls and lets dead-code
    elimination drop the rest of the signal forest; use it only when
    no callback will read signals back by name (the verification hot
    path: {!Proof_engine.Consistency} compiles its own plans this
    way).  Outcomes, statistics and commit behaviour are identical
    either way.

    Thread safety: a [compiled] value is immutable after [compile] and
    may be shared across {!Exec.Pool} domains.  Mutable evaluation
    state ({!Machine.State.t} + {!Hw.Plan.instance}) lives in a
    {!session}, which is single-domain: either allocate a fresh one
    per run ({!run_compiled} does) or — the batched-sweep fast path —
    reuse the calling domain's cached session ({!local_session}), so
    pool workers bind a plan once per domain rather than once per
    task.  Concurrent runs over one [compiled] never share mutable
    state (the {!Hw.Plan} plan/instance contract). *)

val transform : compiled -> Transform.t
val plan : compiled -> Hw.Plan.t

val lanes_plan : compiled -> Hw.Plan.t
(** The tape the bit-parallel lanes engine actually evaluates.  For an
    optimized compile this is the fold-only sibling of {!plan} — LUT
    synthesis is skipped because a per-lane table walk would replace
    the packed boolean word ops the lanes engine lives on — stamped
    with {!plan} as its {!Hw.Plan.work_equiv} twin so both engines
    account identical WORK counters.  For an unoptimized compile it is
    {!plan} itself.  Forces the lazily-built sibling. *)

val rebind : compiled -> Transform.t -> compiled
(** [rebind c t] reuses [c]'s evaluation plan for transform [t], which
    must have the {e same shape} as [c]'s transform: identical stage
    count, register names, synthesized signal names and hazard
    structure — i.e. the two transforms come from the same machine
    builder and differ only in initial values (the program image).
    This is the batched-path contract from the sweep engine, promoted
    to a public operation: plan slots are shape-only, and state
    creation reads initial values from the {e rebound} transform, so
    runs of the result behave exactly as if [t] had been compiled
    directly.  The service layer uses this to compile each machine
    shape once and serve every program against it.

    @raise Invalid_argument when the shapes differ. *)

val run_compiled :
  ?ext:ext_model ->
  ?callbacks:callbacks ->
  ?inject:injection ->
  ?cancel:Exec.Cancel.token ->
  ?max_cycles:int ->
  stop_after:int ->
  compiled ->
  result
(** Simulate a precompiled machine from the initial state until
    [stop_after] instructions have retired.  [max_cycles] defaults to
    a generous bound derived from [stop_after].  Deadlock is declared
    when no stage updates for [4 * n_stages + 64] consecutive cycles
    while work remains.

    [cancel] is polled once per cycle; a tripped token aborts the run
    by raising {!Exec.Cancel.Cancelled} — the campaign driver's
    backstop against mutants whose simulation never converges. *)

(** {1 Sessions (compile once, run many programs)}

    For BMC sweeps, workload sweeps and fault campaigns the machine
    {e shape} is fixed and only the initial register-file contents
    (the program, its data) vary per point.  A session makes the
    program data instead of structure: it owns one persistent
    {!Machine.State.t} with the compiled plan bound to it once;
    {!run_session} resets the state in place — plan bindings survive,
    see {!Machine.State.reset} — applies per-program initial-value
    overrides, and replays the machine.  Cost per point drops from
    build + compile + bind + run to reset + run.

    A session is single-domain mutable state.  A run's [result.state]
    is the session's own state, live only until the next
    [run_session] on the same session — snapshot what must survive
    (the checkers do). *)

type session

val session : compiled -> session
(** A fresh session (own state, plan bound once). *)

val local_session : compiled -> session
(** The calling domain's cached session for this compiled machine
    (physical equality), created on first use.  {!Exec.Pool} workers
    use this so instances are allocated once per domain, not per
    task.  Do not use from a task that re-enters the pool (and may
    help execute other tasks) while a run on the session is in
    progress. *)

val run_session :
  ?ext:ext_model ->
  ?callbacks:callbacks ->
  ?inject:injection ->
  ?cancel:Exec.Cancel.token ->
  ?max_cycles:int ->
  ?init:(string * Machine.Value.t) list ->
  stop_after:int ->
  session ->
  result
(** Reset the session state — [init] entries (deep-copied) override
    the spec's initial values, see {!Machine.State.reset} — and
    simulate as {!run_compiled} does.  The reset also recovers the
    session after a cancelled, faulted or raising run, so pooled
    sessions need no cleanup between tasks. *)

val run :
  ?ext:ext_model ->
  ?callbacks:callbacks ->
  ?inject:injection ->
  ?cancel:Exec.Cancel.token ->
  ?max_cycles:int ->
  stop_after:int ->
  Transform.t ->
  result
(** {!compile} + {!run_compiled}. *)

val run_reference :
  ?ext:ext_model ->
  ?callbacks:callbacks ->
  ?inject:injection ->
  ?cancel:Exec.Cancel.token ->
  ?max_cycles:int ->
  stop_after:int ->
  Transform.t ->
  result
(** Closure-path compatibility shim: the original tree-walking
    interpreter with a per-cycle string-keyed overlay, driving the
    {e same} cycle loop as the compiled path (stall engine, tags,
    retirement, statistics are shared code).  Kept as the oracle for
    differential tests and the interpreted baseline in the benchmark
    suite; simulation users should call {!run}. *)

val cpi : stats -> float
(** Cycles per retired instruction. *)

(** {1 Bit-parallel lane runs (up to 62 programs per cycle loop)}

    The lane mirror of a session: the compiled control/data plan
    evaluated as a {!Hw.Plan.lanes} pack over a {!Machine.State.lanes}
    SoA state, advancing every lane one cycle per loop iteration.  The
    per-cycle decision order is identical to the scalar loop, so each
    lane's outcome, statistics and observer view match a solo scalar
    run of the same program bit for bit.

    Restrictions: injection hooks are not supported (fault campaigns
    only use lanes for structural mutants, whose injection record is
    the physical {!no_injection}); the [ext] model is queried once per
    global cycle and shared by all lanes, so it must be a pure function
    of [stage]/[cycle].  Work counts are staged into the caller's
    {!Obs.Counters.ledger}; on any exception the caller discards the
    ledger and replays the lanes through the scalar path. *)

type lane_result = {
  lr_outcome : outcome;
  lr_stats : stats;
  lr_divergence : int;
      (** first cycle this lane's stall/rollback bits split from the
          pack's majority; [-1] if it never diverged *)
}

type lane_obs = {
  lob_pre_edge :
    cycle:int -> Stall_engine.lane_signals -> tags:int array array ->
    running:int -> unit;
      (** after signal evaluation, before the clock edge.  [tags] is
          stage-major, lane-indexed, [-1] = no tag, pre-shift; the
          arrays are live — read only, do not retain. *)
  lob_post_edge :
    cycle:int -> Stall_engine.lane_signals -> tags:int array array ->
    running:int -> unit;
      (** after the edge committed stage and rollback writes; [tags]
          still pre-shift *)
  lob_retire : cycle:int -> lane:int -> tag:int -> rollback:string option -> unit;
      (** per retirement, in (tag, kind) order within a lane *)
}

val no_lane_obs : lane_obs

type lane_session

val lanes_session : ?capacity:int -> compiled -> lane_session
(** Fresh SoA state + lane plan instance bound once; reusable across
    {!run_lanes_session} calls. *)

val lanes_state : lane_session -> Machine.State.lanes

val local_lanes_session : compiled -> lane_session
(** The calling domain's cached lane session (physical equality on
    [compiled]), capacity {!Hw.Lanes.max_lanes}. *)

val run_lanes_session :
  ?ext:ext_model ->
  ?cancel:Exec.Cancel.token ->
  ?obs:lane_obs ->
  ?faulty:bool ->
  ledger:Obs.Counters.ledger ->
  inits:(string * Machine.Value.t) list array ->
  stop_afters:int array ->
  lane_session ->
  lane_result array
(** Reset lane [l] from [inits.(l)] and simulate until it retires
    [stop_afters.(l)] instructions (per-lane cycle budget and deadlock
    window as in the scalar loop); finished lanes are peeled from the
    pack while the rest keep running.  [faulty] relaxes the
    missing-retire-tag asserts exactly like the scalar loop's
    [inject <> None].  Raises on any width/shape problem — callers
    discard the ledger and fall back to scalar runs. *)
