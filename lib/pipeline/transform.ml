module Spec = Machine.Spec

type source_kind =
  | From_writer
  | From_chain of string
  | No_source

type source = {
  src_stage : int;
  src_kind : source_kind;
  hit_signal : string;
  cand_signal : string option;
  has_addr_compare : bool;
  conservative : bool;
}

type rule = {
  rule_label : string;
  consumer_stage : int;
  operand_reg : string;
  operand_port : int option;
  writer_stage : int;
  g_signal : string option;
  g_default : Hw.Expr.t;
  dhaz_signal : string;
  sources : source list;
}

type t = {
  base : Spec.t;
  machine : Spec.t;
  options : Fwd_spec.options;
  signals : (string * Hw.Expr.t) list;
  stage_dhaz : string array;
  speculations : Fwd_spec.speculation list;
  rules : rule list;
}

exception Transform_error of string

let err fmt = Format.kasprintf (fun s -> raise (Transform_error s)) fmt
let full_signal j = Printf.sprintf "$full_%d" j
let ext_signal j = Printf.sprintf "$ext_%d" j
let stage_dhaz_signal k = Printf.sprintf "$dhaz_stage_%d" k

(* ------------------------------------------------------------------ *)
(* Signal builder                                                      *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable sigs_rev : (string * Hw.Expr.t) list;
  defined : (string, int) Hashtbl.t;  (* name -> width *)
  mutable extra_regs : Spec.register list;
  mutable extra_writes : (int * Spec.write) list;
  mutable rules_rev : rule list;
  chains : (string, (int * chain_stage) list) Hashtbl.t;
      (* chain head -> per writer-stage info *)
}

and chain_stage = {
  cs_valid_signal : string;  (* valid for the instruction in this stage *)
  cs_inst : string;          (* the chain instance this stage writes *)
}

let new_builder () =
  {
    sigs_rev = [];
    defined = Hashtbl.create 64;
    extra_regs = [];
    extra_writes = [];
    rules_rev = [];
    chains = Hashtbl.create 8;
  }

let def b name expr =
  match Hashtbl.find_opt b.defined name with
  | Some _ -> ()
  | None ->
    let w =
      match Hw.Expr.check expr with
      | Ok w -> w
      | Error msg -> err "internal: signal %s ill-typed: %s" name msg
    in
    Hashtbl.replace b.defined name w;
    b.sigs_rev <- (name, expr) :: b.sigs_rev

let sref b name =
  match Hashtbl.find_opt b.defined name with
  | Some w -> Hw.Expr.input name w
  | None -> err "internal: signal %s referenced before definition" name

(* ------------------------------------------------------------------ *)
(* Valid-bit chains (paper §4.1: Qv.k registers and Q_valid signals)   *)
(* ------------------------------------------------------------------ *)

(* The full instance chain of [member], head (earliest stage) first. *)
let full_chain m member =
  let back = Spec.instance_chain m member in
  let head = List.nth back (List.length back - 1) in
  let rec fwd n acc =
    match Spec.next_instance m n with
    | Some nx -> fwd nx (nx :: acc)
    | None -> List.rev acc
  in
  head :: fwd head []

let find_write_in writes dst =
  List.find_opt (fun (w : Spec.write) -> String.equal w.dst dst) writes

(* Build (once per chain) the valid signals, Qv registers and
   candidate expressions for every stage the chain spans.  [rewritten]
   gives the already-transformed writes of later stages; stages not yet
   processed (the chain head can live in the consumer's own stage) fall
   back to the original description, which is only sound when the write
   enable reads nothing that needs forwarding — checked below. *)
let is_local_name (m : Spec.t) ~stage name =
  (String.length name > 0 && name.[0] = '$')
  || (not (Spec.register_exists m name))
  ||
  let r = Spec.find_register m name in
  r.Spec.stage = stage || r.Spec.stage = stage - 1

let build_chain b m ~rewritten ~original member =
  let chain = full_chain m member in
  let head = List.hd chain in
  match Hashtbl.find_opt b.chains head with
  | Some info -> info
  | None ->
    let width = (Spec.find_register m head).width in
    let info = ref [] in
    let prev_qv = ref None in
    List.iter
      (fun inst ->
        let j = (Spec.find_register m inst).stage in
        (* The instruction in stage j writes instance [inst]; the
           instance it can read was written by stage j-1. *)
        let q_in = (Spec.find_register m inst).prev_instance in
        let write =
          match find_write_in (rewritten j) inst with
          | Some w -> Some w
          | None -> (
            match find_write_in (original j) inst with
            | None -> None
            | Some w ->
              (match w.Spec.guard with
              | None -> ()
              | Some g ->
                List.iter
                  (fun (name, _) ->
                    if not (is_local_name m ~stage:j name) then
                      err
                        "forwarding register %s: its write enable in stage \
                         %d reads %s, which itself needs forwarding; move \
                         the chain head to a later stage"
                        inst j name)
                  (Hw.Expr.inputs g);
                if Hw.Expr.file_reads g <> [] then
                  err
                    "forwarding register %s: its write enable in stage %d \
                     reads a register file"
                    inst j);
              Some w)
        in
        ignore q_in;
        ignore width;
        let we_q =
          match write with
          | None -> Hw.Expr.fls  (* pure shift: never originates here *)
          | Some w -> ( match w.guard with None -> Hw.Expr.tru | Some g -> g)
        in
        let qv_in =
          match !prev_qv with
          | None -> Hw.Expr.fls
          | Some qv -> Hw.Expr.input qv 1
        in
        let valid_name = Printf.sprintf "$valid_%s_%d" head j in
        def b valid_name (Hw.Expr.( ||: ) qv_in we_q);
        (* Pipe the valid bit: Qv.(j+1) := Q_valid^j, clocked with ue_j. *)
        let qv_name = Printf.sprintf "$Qv_%s.%d" head (j + 1) in
        b.extra_regs <-
          {
            Spec.reg_name = qv_name;
            width = 1;
            stage = j;
            kind = Spec.Simple;
            visible = false;
            prev_instance = None;
          }
          :: b.extra_regs;
        b.extra_writes <-
          ( j,
            {
              Spec.dst = qv_name;
              value = sref b valid_name;
              guard = None;
              wr_addr = None;
            } )
          :: b.extra_writes;
        prev_qv := Some qv_name;
        info := (j, { cs_valid_signal = valid_name; cs_inst = inst }) :: !info)
      chain;
    let result = List.rev !info in
    Hashtbl.replace b.chains head result;
    result

(* ------------------------------------------------------------------ *)
(* Precomputed write enable / address derivation                       *)
(* ------------------------------------------------------------------ *)

(* The paper assumes the write enable and write address of R are
   precomputed in an early stage and piped along ([Rwe.j], [Rwa.j]).
   When stage w's write uses a plain piped register for its guard or
   address, we find the instance the instruction in stage [j] carries
   by walking the instance links.  Otherwise the designer supplies an
   override, or the hit over-approximates (conservative). *)
let derive_piped m ~overrides ~actual ~j =
  match List.assoc_opt j overrides with
  | Some e -> (Some e, false)
  | None -> (
    match actual with
    | None -> (Some Hw.Expr.tru, false)
    | Some (Hw.Expr.Const _ as c) -> (Some c, false)
    | Some (Hw.Expr.Input (name, width)) when Spec.register_exists m name -> (
      match Spec.instance_at_stage m name ~consumer_stage:j with
      | Some inst -> (Some (Hw.Expr.input inst width), false)
      | None -> (None, true))
    | Some _ -> (None, true))

(* ------------------------------------------------------------------ *)
(* One forwarding rule (paper §4.1)                                    *)
(* ------------------------------------------------------------------ *)

type operand =
  | Op_scalar of string
  | Op_file of { file : string; addr : Hw.Expr.t; port : int }

let operand_reg = function
  | Op_scalar r -> r
  | Op_file { file; _ } -> file

let find_hint hints ~stage ~operand =
  List.find_opt
    (fun (h : Fwd_spec.hint) ->
      h.h_stage = stage
      &&
      match (h.h_operand, operand) with
      | Fwd_spec.Reg r, Op_scalar r' -> String.equal r r'
      | Fwd_spec.File_port (f, i), Op_file { file; port; _ } ->
        String.equal f file && i = port
      | Fwd_spec.Reg _, Op_file _ | Fwd_spec.File_port _, Op_scalar _ -> false)
    hints

let synth_rule b m (options : Fwd_spec.options) ~rewritten ~original ~hints ~k operand =
  let reg_name = operand_reg operand in
  let r = Spec.find_register m reg_name in
  let w = r.stage in
  if w < k - 1 then
    err
      "stage %d reads %s, which is written by the earlier stage %d: add \
       pipelined instances (step 1 of the recipe)"
      k reg_name w;
  assert (w > k);
  let hint =
    Obs.Span.with_span "transform.hint_resolution" (fun () ->
        find_hint hints ~stage:k ~operand)
  in
  let label =
    let base =
      match hint with
      | Some { Fwd_spec.h_label = Some l; _ } -> l
      | Some _ | None -> (
        match operand with
        | Op_scalar rn -> rn
        | Op_file { file; port; _ } -> Printf.sprintf "%s_p%d" file port)
    in
    Printf.sprintf "%d_%s" k base
  in
  let read_addr =
    match operand with Op_scalar _ -> None | Op_file { addr; _ } -> Some addr
  in
  (* A register with no stage write (e.g. one written only by a
     speculation's rollback, like an exception PC) gets fully
     conservative sources: any full stage ahead raises a data hazard,
     so the read waits until the pipe ahead has drained. *)
  let writer_write = find_write_in (rewritten w) reg_name in
  let we_overrides =
    match hint with Some h -> h.Fwd_spec.h_we_override | None -> []
  in
  let wa_overrides =
    match hint with Some h -> h.Fwd_spec.h_wa_override | None -> []
  in
  let chain_info =
    match (options.mode, hint) with
    | Fwd_spec.Interlock_only, _ -> None
    | Fwd_spec.Full, Some { Fwd_spec.h_chain = Some c; _ } ->
      Some (build_chain b m ~rewritten ~original c, List.hd (full_chain m c))
    | Fwd_spec.Full, (Some { Fwd_spec.h_chain = None; _ } | None) -> None
  in
  (* The value forwarded from a chain stage: what its instruction is
     writing into the chain instance (or what it carries along). *)
  let chain_cand cs =
    let inst = cs.cs_inst in
    let j = (Spec.find_register m inst).Spec.stage in
    let width = (Spec.find_register m inst).Spec.width in
    let q_in = (Spec.find_register m inst).Spec.prev_instance in
    let write =
      match find_write_in (rewritten j) inst with
      | Some w -> Some w
      | None -> find_write_in (original j) inst
    in
    match write with
    | Some ww -> (
      match (ww.Spec.guard, q_in) with
      | None, _ -> ww.Spec.value
      | Some g, Some qi -> Hw.Expr.mux g ww.Spec.value (Hw.Expr.input qi width)
      | Some _, None -> ww.Spec.value)
    | None -> (
      match q_in with
      | Some qi -> Hw.Expr.input qi width
      | None -> Hw.Expr.const_int ~width 0)
  in
  (* Per source stage j in k+1 .. w: hit, candidate, not-ready. *)
  let sources = ref [] in
  let cases = ref [] in        (* (hit, candidate) for the g network *)
  let dhaz_cases = ref [] in   (* (hit, not-ready) for the interlock *)
  for j = k + 1 to w do
    let is_writer = j = w in
    let we_piped, we_conservative =
      match writer_write with
      | None -> (None, true)
      | Some ww ->
        if is_writer then
          (Some (Option.value ~default:Hw.Expr.tru ww.Spec.guard), false)
        else derive_piped m ~overrides:we_overrides ~actual:ww.Spec.guard ~j
    in
    let wa_piped, wa_conservative =
      match (read_addr, writer_write) with
      | None, _ | _, None -> (None, false)
      | Some _, Some ww ->
        if is_writer then (ww.Spec.wr_addr, false)
        else derive_piped m ~overrides:wa_overrides ~actual:ww.Spec.wr_addr ~j
    in
    let hit =
      let full = Hw.Expr.input (full_signal j) 1 in
      let we = match we_piped with Some e -> e | None -> Hw.Expr.tru in
      let addr_match =
        match (read_addr, wa_piped) with
        | Some ra, Some wa -> Hw.Circuits.equality_tester ra wa
        | Some _, None | None, _ -> Hw.Expr.tru
      in
      Hw.Expr.( &&: ) full (Hw.Expr.( &&: ) we addr_match)
    in
    let hit_name = Printf.sprintf "$hit_%s_%d" label j in
    def b hit_name hit;
    let stage_busy j =
      Hw.Expr.( ||: )
        (sref b (stage_dhaz_signal j))
        (Hw.Expr.input (ext_signal j) 1)
    in
    let kind, cand, not_ready =
      match writer_write with
      | None -> (No_source, None, Hw.Expr.tru)
      | Some ww ->
      if is_writer then (From_writer, Some ww.Spec.value, stage_busy w)
      else
        match chain_info with
        | Some (stages, head) -> (
          match List.assoc_opt j stages with
          | Some cs ->
            let valid = sref b cs.cs_valid_signal in
            (* The value is usable if it already sits in a forwarding
               register (the piped valid bit Qv.j is set), or is being
               produced right now by a stage that can complete this
               cycle. *)
            let qv_reg = Printf.sprintf "$Qv_%s.%d" head j in
            let qv =
              if
                List.exists
                  (fun (r : Spec.register) -> String.equal r.reg_name qv_reg)
                  b.extra_regs
              then Hw.Expr.input qv_reg 1
              else Hw.Expr.fls
            in
            let ready =
              Hw.Expr.( ||: ) qv
                (Hw.Expr.( &&: ) valid (Hw.Expr.not_ (stage_busy j)))
            in
            (From_chain head, Some (chain_cand cs), Hw.Expr.not_ ready)
          | None -> (No_source, None, Hw.Expr.tru))
        | None -> (No_source, None, Hw.Expr.tru)
    in
    let cand_name =
      match cand with
      | None -> None
      | Some c ->
        let n = Printf.sprintf "$cand_%s_%d" label j in
        def b n c;
        Some n
    in
    sources :=
      {
        src_stage = j;
        src_kind = kind;
        hit_signal = hit_name;
        cand_signal = cand_name;
        has_addr_compare =
          (match (read_addr, wa_piped) with Some _, Some _ -> true | _ -> false);
        conservative = we_conservative || wa_conservative;
      }
      :: !sources;
    let cand_or_zero =
      match cand_name with
      | Some n -> sref b n
      | None -> Hw.Expr.const_int ~width:r.width 0
    in
    cases := (sref b hit_name, cand_or_zero) :: !cases;
    dhaz_cases := (sref b hit_name, not_ready) :: !dhaz_cases
  done;
  let cases = List.rev !cases in
  let dhaz_cases = List.rev !dhaz_cases in
  let default =
    match operand with
    | Op_scalar rn -> Hw.Expr.input rn r.width
    | Op_file { file; addr; _ } ->
      Hw.Expr.File_read { file; data_width = r.width; addr }
  in
  let g_name, g_expr_opt =
    match options.mode with
    | Fwd_spec.Interlock_only -> (None, None)
    | Fwd_spec.Full ->
      let g = Hw.Circuits.priority_select ~impl:options.impl cases ~default in
      let n = Printf.sprintf "$g_%s" label in
      def b n g;
      (Some n, Some (sref b n))
  in
  let dhaz_expr =
    match options.mode with
    | Fwd_spec.Interlock_only ->
      List.fold_left
        (fun acc (h, _) -> Hw.Expr.( ||: ) acc h)
        Hw.Expr.fls cases
    | Fwd_spec.Full ->
      Hw.Circuits.priority_select ~impl:Hw.Circuits.Chain dhaz_cases
        ~default:Hw.Expr.fls
  in
  (* An operand the instruction does not actually use cannot stall it
     (the muxes still forward; only the interlock is gated). *)
  let dhaz_expr =
    match hint with
    | Some { Fwd_spec.h_needed = Some cond; _ } -> Hw.Expr.( &&: ) cond dhaz_expr
    | Some { Fwd_spec.h_needed = None; _ } | None -> dhaz_expr
  in
  let dhaz_name = Printf.sprintf "$dhaz_%s" label in
  def b dhaz_name dhaz_expr;
  let rule =
    {
      rule_label = label;
      consumer_stage = k;
      operand_reg = reg_name;
      operand_port =
        (match operand with Op_scalar _ -> None | Op_file { port; _ } -> Some port);
      writer_stage = w;
      g_signal = g_name;
      g_default = default;
      dhaz_signal = dhaz_name;
      sources = List.rev !sources;
    }
  in
  b.rules_rev <- rule :: b.rules_rev;
  (g_expr_opt, dhaz_name)

(* ------------------------------------------------------------------ *)
(* The driver                                                          *)
(* ------------------------------------------------------------------ *)

let is_local (m : Spec.t) ~k name =
  let r = Spec.find_register m name in
  r.stage = k || r.stage = k - 1

let run ?(options = Fwd_spec.default_options) ?(hints = [])
    ?(speculations = []) (m : Spec.t) =
  Obs.Span.with_span "transform.run" ~args:[ ("machine", m.machine_name) ]
  @@ fun () ->
  Obs.Span.with_span "transform.validate" (fun () ->
      (match Machine.Validate.run m with
      | [] -> ()
      | issues ->
        err "machine %s is not well-formed: %s" m.machine_name
          (String.concat "; "
             (List.map
                (fun (i : Machine.Validate.issue) ->
                  i.Machine.Validate.where ^ ": " ^ i.Machine.Validate.what)
                issues)));
      List.iter
        (fun (sp : Fwd_spec.speculation) ->
          if sp.resolve_stage < 0 || sp.resolve_stage >= m.n_stages then
            err "speculation %s: resolve stage %d out of range" sp.spec_label
              sp.resolve_stage;
          List.iter
            (fun (w : Spec.write) ->
              if not (Spec.register_exists m w.dst) then
                err "speculation %s: rollback write to unknown register %s"
                  sp.spec_label w.dst)
            sp.rollback_writes)
        speculations);
  let b = new_builder () in
  let rewritten_tbl : (int, Spec.write list) Hashtbl.t = Hashtbl.create 8 in
  let rewritten j = try Hashtbl.find rewritten_tbl j with Not_found -> [] in
  let original j = (Spec.stage_of m j).Spec.writes in
  let stage_dhaz = Array.make m.n_stages "" in
  let spec_out = ref [] in
  Obs.Span.with_span "transform.forwarding_synthesis" (fun () ->
  for k = m.n_stages - 1 downto 0 do
    Obs.Span.with_span (Printf.sprintf "transform.stage_%d" k) @@ fun () ->
    let stage_rule_dhaz = ref [] in
    (* Memoized per-operand synthesis. *)
    let scalar_memo : (string, Hw.Expr.t option) Hashtbl.t = Hashtbl.create 4 in
    let file_memo : (string * Hw.Expr.t, Hw.Expr.t option) Hashtbl.t =
      Hashtbl.create 4
    in
    let port_counter : (string, int) Hashtbl.t = Hashtbl.create 4 in
    let get_scalar name =
      match Hashtbl.find_opt scalar_memo name with
      | Some g -> g
      | None ->
        let g, dh =
          synth_rule b m options ~rewritten ~original ~hints ~k
            (Op_scalar name)
        in
        stage_rule_dhaz := dh :: !stage_rule_dhaz;
        Hashtbl.replace scalar_memo name g;
        g
    in
    let get_file ~file ~addr =
      match Hashtbl.find_opt file_memo (file, addr) with
      | Some g -> g
      | None ->
        let port =
          match Hashtbl.find_opt port_counter file with
          | Some n ->
            Hashtbl.replace port_counter file (n + 1);
            n
          | None ->
            Hashtbl.replace port_counter file 1;
            0
        in
        let g, dh =
          synth_rule b m options ~rewritten ~original ~hints ~k
            (Op_file { file; addr; port })
        in
        stage_rule_dhaz := dh :: !stage_rule_dhaz;
        Hashtbl.replace file_memo (file, addr) g;
        g
    in
    let rewrite_expr e =
      let e =
        Hw.Expr.subst
          (fun name ->
            if String.length name > 0 && name.[0] = '$' then None
            else if not (Spec.register_exists m name) then None
            else if is_local m ~k name then None
            else get_scalar name)
          e
      in
      Hw.Expr.subst_file_read
        (fun ~file ~addr ->
          if not (Spec.register_exists m file) then None
          else if is_local m ~k file then None
          else get_file ~file ~addr)
        e
    in
    let rewrite_write (w : Spec.write) =
      {
        w with
        Spec.value = rewrite_expr w.Spec.value;
        guard = Option.map rewrite_expr w.Spec.guard;
        wr_addr = Option.map rewrite_expr w.Spec.wr_addr;
      }
    in
    let s = Spec.stage_of m k in
    Hashtbl.replace rewritten_tbl k (List.map rewrite_write s.writes);
    (* Speculations resolved in this stage: rewrite their operands with
       this stage's forwarding network. *)
    List.iter
      (fun (sp : Fwd_spec.speculation) ->
        if sp.resolve_stage = k then
          spec_out :=
            {
              sp with
              Fwd_spec.mispredict = rewrite_expr sp.Fwd_spec.mispredict;
              rollback_writes =
                List.map rewrite_write sp.Fwd_spec.rollback_writes;
            }
            :: !spec_out)
      speculations;
    let dhaz_k =
      List.fold_left
        (fun acc n -> Hw.Expr.( ||: ) acc (sref b n))
        Hw.Expr.fls !stage_rule_dhaz
    in
    def b (stage_dhaz_signal k) dhaz_k;
    stage_dhaz.(k) <- stage_dhaz_signal k
  done);
  let machine =
    Obs.Span.with_span "transform.assemble" (fun () ->
        {
          m with
          Spec.registers = m.registers @ List.rev b.extra_regs;
          stages =
            List.map
              (fun (s : Spec.stage) ->
                let extra =
                  List.filter_map
                    (fun (j, w) -> if j = s.index then Some w else None)
                    (List.rev b.extra_writes)
                in
                { s with Spec.writes = rewritten s.index @ extra })
              m.stages;
        })
  in
  {
    base = m;
    machine;
    options;
    signals = List.rev b.sigs_rev;
    stage_dhaz;
    speculations = List.rev !spec_out;
    rules = List.rev b.rules_rev;
  }

(* ------------------------------------------------------------------ *)
(* Structural digest                                                   *)
(* ------------------------------------------------------------------ *)

(* Everything the evaluation engines compile or consume is rendered
   and digested: both machines (registers, stage writes, initial
   values), the synthesized signals in definition order, the hazard
   signal names and the speculation declarations.  Two transforms with
   equal digests compile to behaviourally identical plans and
   sessions, so per-domain session caches can key on the digest and
   survive the caller rebuilding a structurally identical transform.

   File initial values are folded into a cheap rolling hash rather
   than pretty-printed — a 4k-entry memory image must not cost more
   to digest than to reset. *)

let digest_add_expr buf e =
  Buffer.add_string buf (Hw.Expr.to_string e);
  Buffer.add_char buf '\n'

let digest_add_expr_opt buf = function
  | None -> Buffer.add_string buf "-\n"
  | Some e -> digest_add_expr buf e

let digest_add_write buf (w : Spec.write) =
  Buffer.add_string buf ("  -> " ^ w.Spec.dst ^ "\n");
  digest_add_expr buf w.Spec.value;
  digest_add_expr_opt buf w.Spec.guard;
  digest_add_expr_opt buf w.Spec.wr_addr

let digest_add_value buf v =
  match v with
  | Machine.Value.Scalar bv ->
    Buffer.add_string buf
      (Printf.sprintf "s%d:%d" (Hw.Bitvec.width bv) (Hw.Bitvec.to_int bv))
  | Machine.Value.File arr ->
    let h = ref (Array.length arr) in
    Array.iter
      (fun bv ->
        h := ((!h * 31) + ((Hw.Bitvec.width bv * 131) + Hw.Bitvec.to_int bv))
             land max_int)
      arr;
    Buffer.add_string buf (Printf.sprintf "f%d:%d" (Array.length arr) !h)

let digest_add_machine buf (m : Spec.t) =
  Buffer.add_string buf m.Spec.machine_name;
  Buffer.add_string buf (Printf.sprintf "/%d\n" m.Spec.n_stages);
  List.iter
    (fun (r : Spec.register) ->
      Buffer.add_string buf
        (Printf.sprintf "reg %s w%d s%d %s %b %s " r.Spec.reg_name r.Spec.width
           r.Spec.stage
           (match r.Spec.kind with
           | Spec.Simple -> "simple"
           | Spec.File { addr_bits } -> Printf.sprintf "file:%d" addr_bits)
           r.Spec.visible
           (Option.value ~default:"-" r.Spec.prev_instance));
      digest_add_value buf (Spec.initial_value m r);
      Buffer.add_char buf '\n')
    m.Spec.registers;
  List.iter
    (fun (s : Spec.stage) ->
      Buffer.add_string buf
        (Printf.sprintf "stage %d %s\n" s.Spec.index s.Spec.stage_name);
      List.iter (digest_add_write buf) s.Spec.writes)
    m.Spec.stages

let digest (t : t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "options %s %s\n"
       (match t.options.Fwd_spec.mode with
       | Fwd_spec.Full -> "full"
       | Fwd_spec.Interlock_only -> "interlock_only")
       (match t.options.Fwd_spec.impl with
       | Hw.Circuits.Chain -> "chain"
       | Hw.Circuits.Tree -> "tree"
       | Hw.Circuits.Bus -> "bus"));
  Buffer.add_string buf "base\n";
  digest_add_machine buf t.base;
  Buffer.add_string buf "machine\n";
  digest_add_machine buf t.machine;
  List.iter
    (fun (name, e) ->
      Buffer.add_string buf ("sig " ^ name ^ " ");
      digest_add_expr buf e)
    t.signals;
  Array.iter
    (fun name -> Buffer.add_string buf ("dhaz " ^ name ^ "\n"))
    t.stage_dhaz;
  List.iter
    (fun (sp : Fwd_spec.speculation) ->
      Buffer.add_string buf
        (Printf.sprintf "spec %s r%d %b " sp.Fwd_spec.spec_label
           sp.Fwd_spec.resolve_stage sp.Fwd_spec.retires);
      digest_add_expr buf sp.Fwd_spec.mispredict;
      List.iter (digest_add_write buf) sp.Fwd_spec.rollback_writes)
    t.speculations;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let optimize (t : t) =
  let sw (w : Spec.write) =
    {
      w with
      Spec.value = Hw.Opt.simplify w.Spec.value;
      guard = Option.map Hw.Opt.simplify w.Spec.guard;
      wr_addr = Option.map Hw.Opt.simplify w.Spec.wr_addr;
    }
  in
  {
    t with
    signals = List.map (fun (n, e) -> (n, Hw.Opt.simplify e)) t.signals;
    machine =
      {
        t.machine with
        Spec.stages =
          List.map
            (fun (s : Spec.stage) ->
              { s with Spec.writes = List.map sw s.Spec.writes })
            t.machine.Spec.stages;
      };
    speculations =
      List.map
        (fun (sp : Fwd_spec.speculation) ->
          {
            sp with
            Fwd_spec.mispredict = Hw.Opt.simplify sp.Fwd_spec.mispredict;
            rollback_writes = List.map sw sp.Fwd_spec.rollback_writes;
          })
        t.speculations;
  }

let find_rule t ~stage ~operand =
  List.find_opt
    (fun r ->
      r.consumer_stage = stage
      &&
      match (operand, r.operand_port) with
      | Fwd_spec.Reg n, None -> String.equal n r.operand_reg
      | Fwd_spec.File_port (f, i), Some p ->
        String.equal f r.operand_reg && i = p
      | Fwd_spec.Reg _, Some _ | Fwd_spec.File_port _, None -> false)
    t.rules
