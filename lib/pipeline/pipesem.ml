module State = Machine.State

type ext_model = stage:int -> cycle:int -> bool

type retire_kind =
  | Normal
  | Via_rollback of string

type cycle_record = {
  cycle : int;
  full : bool array;
  stall : bool array;
  dhaz : bool array;
  ext : bool array;
  rollback : bool array;
  ue : bool array;
  tags : int option array;
}

type callbacks = {
  on_signals : cycle:int -> (string -> Hw.Bitvec.t option) -> unit;
  on_cycle : cycle_record -> unit;
  on_edge : cycle_record -> Machine.State.t -> unit;
  on_retire : tag:int -> kind:retire_kind -> Machine.State.t -> unit;
}

let no_callbacks =
  {
    on_signals = (fun ~cycle:_ _ -> ());
    on_cycle = (fun _ -> ());
    on_edge = (fun _ _ -> ());
    on_retire = (fun ~tag:_ ~kind:_ _ -> ());
  }

type outcome =
  | Completed
  | Deadlocked
  | Out_of_cycles

type stats = {
  cycles : int;
  retired : int;
  fetch_stall_cycles : int;
  dhaz_cycles : int;
  ext_cycles : int;
  rollbacks : int;
  squashed : int;
}

type result = {
  outcome : outcome;
  stats : stats;
  state : Machine.State.t;
}

let bool_bv b = Hw.Bitvec.of_bool b

(* ------------------------------------------------------------------ *)
(* Fault injection.  The hooks mirror where a physical fault would sit
   in the generated machine: on the full-bit register outputs (feeding
   both the synthesized signals and the stall engine), inside the
   stall engine's input/output wiring, or on a pipeline register right
   at the clock edge (a single-event upset).                           *)
(* ------------------------------------------------------------------ *)

type injection = {
  inj_fullb : cycle:int -> bool array -> bool array;
  inj_compute :
    cycle:int ->
    compute:(dhaz:bool array -> Stall_engine.signals) ->
    dhaz:bool array ->
    Stall_engine.signals;
  inj_edge : cycle:int -> Machine.State.t -> unit;
}

let no_injection =
  {
    inj_fullb = (fun ~cycle:_ fullb -> fullb);
    inj_compute = (fun ~cycle:_ ~compute ~dhaz -> compute ~dhaz);
    inj_edge = (fun ~cycle:_ _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* The cycle driver, generic over how a cycle's combinational values
   are produced.  Both the compiled (plan) and the reference (closure)
   engines drive exactly this loop, so their schedules, statistics and
   verdicts agree by construction.                                     *)
(* ------------------------------------------------------------------ *)

type engine = {
  eng_begin : cycle:int -> fullb:bool array -> ext_now:bool array -> unit;
      (* bind the free inputs and evaluate the cycle's signals *)
  eng_lookup : string -> Hw.Bitvec.t option;  (* on_signals view *)
  eng_dhaz : int -> bool;
  eng_mispredict : Fwd_spec.speculation -> bool;
  eng_stage_updates : int -> Machine.Commit.update list;
  eng_rollback_updates : Fwd_spec.speculation -> Machine.Commit.update list;
}

let run_loop ~engine ~state ?(ext = fun ~stage:_ ~cycle:_ -> false)
    ?(callbacks = no_callbacks) ?inject ?(cancel = Exec.Cancel.never)
    ?max_cycles ~stop_after (t : Transform.t) =
  (* Under injection the control invariants the unfaulted engine
     guarantees (a firing stage holds an instruction) no longer hold;
     the loop degrades to "no tag, no retirement" instead of
     asserting. *)
  let faulty = inject <> None in
  let inject = match inject with Some i -> i | None -> no_injection in
  let m = t.Transform.machine in
  let n = m.Machine.Spec.n_stages in
  let max_cycles =
    match max_cycles with
    | Some c -> c
    | None -> (stop_after * 4 * n) + 10_000
  in
  let deadlock_window = (4 * n) + 64 in
  let fullb = Array.make n false in
  let tags = Array.make n None in
  tags.(0) <- Some 0;
  let retired = ref 0 in
  let cycle = ref 0 in
  let idle = ref 0 in
  let outcome = ref Out_of_cycles in
  let fetch_stall_cycles = ref 0 in
  let dhaz_cycles = ref 0 in
  let ext_cycles = ref 0 in
  let rollbacks = ref 0 in
  let squashed = ref 0 in
  (while !retired < stop_after && !cycle < max_cycles && !outcome <> Deadlocked
   do
     Exec.Cancel.check cancel;
     (* Bind the free inputs (full and ext per stage) and evaluate the
        synthesized signals in definition order.  A full-bit fault is
        applied to the register outputs, so it feeds the synthesized
        signals and the stall engine alike — the register itself is
        untouched. *)
     let ext_now = Array.init n (fun k -> ext ~stage:k ~cycle:!cycle) in
     let fullb_eff = inject.inj_fullb ~cycle:!cycle fullb in
     engine.eng_begin ~cycle:!cycle ~fullb:fullb_eff ~ext_now;
     callbacks.on_signals ~cycle:!cycle engine.eng_lookup;
     let dhaz = Array.init n engine.eng_dhaz in
     (* Stall engine, with the injection as middleware: input-wire
        faults perturb [dhaz], control-wire faults rewrite the
        computed signals. *)
     let mispredict ~stage ~stalled =
       (not stalled)
       && List.exists
            (fun (sp : Fwd_spec.speculation) ->
              sp.Fwd_spec.resolve_stage = stage && engine.eng_mispredict sp)
            t.Transform.speculations
     in
     let compute ~dhaz =
       Stall_engine.compute ~fullb:fullb_eff ~dhaz ~ext:ext_now ~mispredict
     in
     let s = inject.inj_compute ~cycle:!cycle ~compute ~dhaz in
     let record =
       {
         cycle = !cycle;
         full = Array.copy s.Stall_engine.full;
         stall = Array.copy s.Stall_engine.stall;
         dhaz = Array.copy dhaz;
         ext = Array.copy ext_now;
         rollback = Array.copy s.Stall_engine.rollback;
         ue = Array.copy s.Stall_engine.ue;
         tags = Array.copy tags;
       }
     in
     callbacks.on_cycle record;
     (* Which speculation fires?  Only the deepest rollback commits its
        corrective writes; everything at or above it is squashed. *)
     let deepest_rollback =
       let rec find k = if k < 0 then None else if s.rollback.(k) then Some k else find (k - 1) in
       find (n - 1)
     in
     let firing_spec =
       match deepest_rollback with
       | None -> None
       | Some k ->
         List.find_opt
           (fun (sp : Fwd_spec.speculation) ->
             sp.Fwd_spec.resolve_stage = k && engine.eng_mispredict sp)
           t.Transform.speculations
     in
     (* Collect all register updates against the pre-edge state. *)
     let updates = ref [] in
     for k = 0 to n - 1 do
       if s.ue.(k) then updates := engine.eng_stage_updates k :: !updates
     done;
     (match firing_spec with
     | None -> ()
     | Some sp -> updates := engine.eng_rollback_updates sp :: !updates);
     (* Clock edge: registers, tags, full bits.  A transient fault
        (single-event upset) flips its bit right after the edge, so
        the consistency checker observes the corrupted state exactly
        as downstream hardware would. *)
     List.iter (Machine.Commit.apply state) (List.rev !updates);
     inject.inj_edge ~cycle:!cycle state;
     callbacks.on_edge record state;
     let retirements = ref [] in
     if s.ue.(n - 1) then (
       match tags.(n - 1) with
       | Some tag -> retirements := (tag, Normal) :: !retirements
       | None -> assert faulty);
     (match (deepest_rollback, firing_spec) with
     | Some k, Some sp when sp.Fwd_spec.retires -> (
       match tags.(k) with
       | Some tag -> retirements := (tag, Via_rollback sp.Fwd_spec.spec_label) :: !retirements
       | None -> assert faulty)
     | Some _, Some _ | Some _, None | None, _ -> ());
     (* Count evicted (non-retiring) instructions. *)
     (match deepest_rollback with
     | None -> ()
     | Some k ->
       incr rollbacks;
       for j = 0 to k do
         match tags.(j) with
         | Some tag
           when not (List.exists (fun (t', _) -> t' = tag) !retirements) ->
           if s.full.(j) then incr squashed
         | Some _ | None -> ()
       done);
     (* Tag shift. *)
     let old_tags = Array.copy tags in
     for st = n - 1 downto 1 do
       tags.(st) <-
         (if s.rollback_up.(st) then None
          else if s.ue.(st - 1) then old_tags.(st - 1)
          else if s.stall.(st) && s.full.(st) then old_tags.(st)
          else None)
     done;
     (match (deepest_rollback, firing_spec) with
     | Some k, Some sp ->
       let base = match old_tags.(k) with Some tag -> tag | None -> 0 in
       tags.(0) <- Some (base + if sp.Fwd_spec.retires then 1 else 0)
     | Some k, None ->
       (* A rollback with no matching speculation cannot happen: the
          mispredict test selected one.  Keep the fetch tag. *)
       ignore k
     | None, _ ->
       if s.ue.(0) then
         tags.(0) <-
           Some ((match old_tags.(0) with Some tag -> tag | None -> 0) + 1));
     let fullb' = Stall_engine.next_fullb s in
     Array.blit fullb' 0 fullb 0 n;
     (* Statistics and liveness. *)
     if s.stall.(0) then incr fetch_stall_cycles;
     if Array.exists (fun b -> b) dhaz then incr dhaz_cycles;
     if Array.exists (fun b -> b) ext_now then incr ext_cycles;
     List.iter
       (fun (tag, kind) ->
         incr retired;
         callbacks.on_retire ~tag ~kind state)
       (List.sort compare !retirements);
     if Array.exists (fun b -> b) s.ue || !retirements <> [] then idle := 0
     else begin
       incr idle;
       if !idle > deadlock_window then outcome := Deadlocked
     end;
     incr cycle
   done);
  if !retired >= stop_after then outcome := Completed;
  Obs.Counters.add Obs.Counters.Sim_cycles !cycle;
  Obs.Counters.add Obs.Counters.Sim_retired !retired;
  {
    outcome = !outcome;
    stats =
      {
        cycles = !cycle;
        retired = !retired;
        fetch_stall_cycles = !fetch_stall_cycles;
        dhaz_cycles = !dhaz_cycles;
        ext_cycles = !ext_cycles;
        rollbacks = !rollbacks;
        squashed = !squashed;
      };
    state;
  }

(* ------------------------------------------------------------------ *)
(* Compiled engine: one evaluation plan per transformed machine.       *)
(* ------------------------------------------------------------------ *)

type compiled = {
  c_tr : Transform.t;
  c_plan : Hw.Plan.t;
  c_free : (string, unit) Hashtbl.t;  (* the $full_k / $ext_k names *)
  c_full_slots : int array;
  c_ext_slots : int array;
  c_dhaz_slots : int array;
  c_spec_slots : (Fwd_spec.speculation * int) list;     (* assq *)
  c_stages : Machine.Commit.cstage array;
  c_rollbacks : (Fwd_spec.speculation * Machine.Commit.cwrite list) list;
  c_lanes : compiled Lazy.t;
      (* the lanes engine's sibling compile: same machine, fold-only
         tape (LUT synthesis would replace the packed boolean word ops
         the bit-parallel engine lives on with per-lane table walks),
         its plan stamped with this compile's plan as work-accounting
         twin so lane and scalar runs stay counter-identical.  Self
         for an unoptimized compile. *)
}

let rec compile_gen ~lut ~optimize ~observe (t : Transform.t) =
  Obs.Span.with_span "pipesem.compile" @@ fun () ->
  let m = t.Transform.machine in
  let n = m.Machine.Spec.n_stages in
  let b = Hw.Plan.create ~auto:true () in
  (* Free inputs first, so they exist even when no signal reads them. *)
  let c_full_slots =
    Array.init n (fun k -> Hw.Plan.input b (Transform.full_signal k) 1)
  in
  let c_ext_slots =
    Array.init n (fun k -> Hw.Plan.input b (Transform.ext_signal k) 1)
  in
  List.iter
    (fun (name, e) -> ignore (Hw.Plan.define b name e))
    t.Transform.signals;
  let c_spec_slots =
    List.map
      (fun (sp : Fwd_spec.speculation) ->
        (sp, Hw.Plan.root b sp.Fwd_spec.mispredict))
      t.Transform.speculations
  in
  let c_stages =
    Array.init n (fun k -> Machine.Commit.compile_stage m b ~stage:k)
  in
  let c_rollbacks =
    List.map
      (fun (sp : Fwd_spec.speculation) ->
        (sp, Machine.Commit.compile_writes m b sp.Fwd_spec.rollback_writes))
      t.Transform.speculations
  in
  let plan = Hw.Plan.build b in
  (* Optimize the tape, then translate every captured slot.  Inputs,
     defines and [root] results are liveness roots, so the remap never
     yields -1 for anything captured above. *)
  let plan, c_full_slots, c_ext_slots, c_spec_slots, c_stages, c_rollbacks =
    if optimize then begin
      (* [observe = false]: the caller promises never to read signals
         back by name (no [on_signals] consumers — the verification
         hot path), so only the hazard signals the cycle driver itself
         polls stay define-rooted; the rest of the signal forest
         survives only where it feeds a commit write, a mispredict
         probe or a hazard chain. *)
      let keep_define =
        if observe then None
        else begin
          let dhaz = Hashtbl.create 8 in
          Array.iter
            (fun nm -> Hashtbl.replace dhaz nm ())
            t.Transform.stage_dhaz;
          Some (Hashtbl.mem dhaz)
        end
      in
      let plan, remap =
        Hw.Plan.optimize_remap ~count:lut ~lut ?keep_define plan
      in
      let f s = remap.(s) in
      let c_full_slots = Array.map f c_full_slots in
      let c_ext_slots = Array.map f c_ext_slots in
      let c_spec_slots = List.map (fun (sp, s) -> (sp, f s)) c_spec_slots in
      let c_stages = Array.map (Machine.Commit.remap_cstage f) c_stages in
      let c_rollbacks =
        List.map
          (fun (sp, ws) -> (sp, List.map (Machine.Commit.remap_cwrite f) ws))
          c_rollbacks
      in
      (* Segment the optimized tape: a stage's commit slots are read
         only on the cycles the stage fires, a speculation's rollback
         slots only when it is the firing rollback.  Group convention
         (relied on by [plan_engine] and [run_lanes_session]): group
         [k] is stage [k]'s commit, group [n + i] the [i]-th entry of
         [c_rollbacks].  Mispredict probes are polled every cycle, so
         they root the control prefix. *)
      let stage_groups =
        Array.to_list
          (Array.map
             (fun cs -> Array.of_list (Machine.Commit.cstage_slots cs))
             c_stages)
      in
      let rb_groups =
        List.map
          (fun (_, ws) ->
            Array.of_list
              (List.fold_left
                 (fun acc cw -> Machine.Commit.cwrite_slots cw acc)
                 [] ws))
          c_rollbacks
      in
      let ctrl_roots = Array.of_list (List.map snd c_spec_slots) in
      let groups = stage_groups @ rb_groups in
      let plan =
        if List.length groups <= 62 then
          Hw.Plan.segment ~ctrl_roots plan ~groups
        else plan
      in
      (plan, c_full_slots, c_ext_slots, c_spec_slots, c_stages, c_rollbacks)
    end
    else (plan, c_full_slots, c_ext_slots, c_spec_slots, c_stages, c_rollbacks)
  in
  let c_dhaz_slots =
    Array.map
      (fun name ->
        match Hw.Plan.define_slot plan name with
        | Some s -> s
        | None -> invalid_arg ("Pipesem.compile: no dhaz signal " ^ name))
      t.Transform.stage_dhaz
  in
  let c_free = Hashtbl.create (2 * n) in
  for k = 0 to n - 1 do
    Hashtbl.replace c_free (Transform.full_signal k) ();
    Hashtbl.replace c_free (Transform.ext_signal k) ()
  done;
  let rec c =
    {
      c_tr = t;
      c_plan = plan;
      c_free;
      c_full_slots;
      c_ext_slots;
      c_dhaz_slots;
      c_spec_slots;
      c_stages;
      c_rollbacks;
      c_lanes =
        lazy
          (if not (optimize && lut) then c
           else
             let lc = compile_gen ~lut:false ~optimize ~observe t in
             let rec lc' =
               {
                 lc with
                 c_plan = Hw.Plan.with_work_equiv ~equiv:c.c_plan lc.c_plan;
                 c_lanes = lazy lc';
               }
             in
             lc');
    }
  in
  c

let compile ?(optimize = Hw.Plan.optimize_default ()) ?(observe = true) t =
  compile_gen ~lut:true ~optimize ~observe t

let transform c = c.c_tr
let plan c = c.c_plan
let lanes_plan c = (Lazy.force c.c_lanes).c_plan

(* Cross-request plan reuse: two transforms of the same shape (same
   stages, registers and synthesized signals — only initial values
   differ, the batched-path contract) can share one compiled plan.
   The returned [compiled] carries [t], so state creation and session
   resets read [t]'s init.  The structural guard is deliberately
   cheap: name-level equality catches shape drift without re-walking
   expression trees (transforms of one machine builder are
   expression-identical by construction). *)
let rebind c (t : Transform.t) =
  let m0 = c.c_tr.Transform.machine and m1 = t.Transform.machine in
  let reg_names (m : Machine.Spec.t) =
    List.map
      (fun r ->
        ( r.Machine.Spec.reg_name,
          r.Machine.Spec.width,
          r.Machine.Spec.stage,
          r.Machine.Spec.kind ))
      m.Machine.Spec.registers
  in
  if
    m0.Machine.Spec.n_stages <> m1.Machine.Spec.n_stages
    || reg_names m0 <> reg_names m1
    || List.map fst c.c_tr.Transform.signals <> List.map fst t.Transform.signals
    || c.c_tr.Transform.stage_dhaz <> t.Transform.stage_dhaz
  then invalid_arg "Pipesem.rebind: transforms differ in shape";
  { c with c_tr = t }

let plan_engine c state =
  let bound =
    State.bind_plan ~extern:(Hashtbl.mem c.c_free) state c.c_plan
  in
  let inst = State.bound_instance bound in
  let n = Array.length c.c_full_slots in
  (* Segmented plans evaluate the control prefix every cycle and a
     stage's (or rollback's) group only when its updates are read —
     always before [run_loop] applies any update, so group evaluation
     sees pre-edge state. *)
  let gated = Hw.Plan.is_segmented c.c_plan in
  let rb_index = List.mapi (fun i (sp, _) -> (sp, i)) c.c_rollbacks in
  let eng_begin ~cycle:_ ~fullb ~ext_now =
    State.load bound;
    for k = 0 to n - 1 do
      Hw.Plan.set inst c.c_full_slots.(k) (bool_bv (k = 0 || fullb.(k)));
      Hw.Plan.set inst c.c_ext_slots.(k) (bool_bv ext_now.(k))
    done;
    if gated then Hw.Plan.run_control inst else Hw.Plan.run inst
  in
  let eng_lookup name =
    match Hw.Plan.read_name inst name with
    | Some v -> Some v
    | None -> (
      match Machine.State.get state name with
      | Machine.Value.Scalar v -> Some v
      | Machine.Value.File _ -> None
      | exception Invalid_argument _ -> None)
  in
  {
    eng_begin;
    eng_lookup;
    eng_dhaz = (fun k -> Hw.Plan.get_bool inst c.c_dhaz_slots.(k));
    eng_mispredict =
      (fun sp -> Hw.Plan.get_bool inst (List.assq sp c.c_spec_slots));
    eng_stage_updates =
      (fun k ->
        if gated then Hw.Plan.run_group inst k;
        Machine.Commit.stage_updates_compiled inst c.c_stages.(k));
    eng_rollback_updates =
      (fun sp ->
        if gated then Hw.Plan.run_group inst (n + List.assq sp rb_index);
        Machine.Commit.writes_updates_compiled inst (List.assq sp c.c_rollbacks));
  }

(* A session: one persistent state with the plan bound to it once.
   [run_session] resets the state in place (bindings survive) and
   replays the machine on new initial contents — many programs, one
   compilation and one plan binding. *)
type session = {
  s_c : compiled;
  s_state : State.t;
  s_engine : engine;
}

let session c =
  Obs.Counters.bump Obs.Counters.Sessions;
  let state = State.create c.c_tr.Transform.machine in
  { s_c = c; s_state = state; s_engine = plan_engine c state }

let run_session ?ext ?callbacks ?inject ?cancel ?max_cycles ?init ~stop_after
    s =
  Obs.Span.with_span "pipesem.run" @@ fun () ->
  (* The reset also repairs state left dirty by a cancelled, faulted
     or raising previous run on this session. *)
  State.reset ?init s.s_c.c_tr.Transform.machine s.s_state;
  run_loop ~engine:s.s_engine ~state:s.s_state ?ext ?callbacks ?inject
    ?cancel ?max_cycles ~stop_after s.s_c.c_tr

(* Per-domain session cache, keyed by physical equality on the
   compiled machine: pool workers allocate (and plan-bind) one
   instance per domain, not per task.  Bounded so abandoned machines
   become collectable. *)
let local_sessions : (compiled * session) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let local_session c =
  let cache = Domain.DLS.get local_sessions in
  match List.assq_opt c !cache with
  | Some s -> s
  | None ->
    let s = session c in
    cache := take 8 ((c, s) :: !cache);
    s

let run_compiled ?ext ?callbacks ?inject ?cancel ?max_cycles ~stop_after c =
  run_session ?ext ?callbacks ?inject ?cancel ?max_cycles ~stop_after
    (session c)

(* ------------------------------------------------------------------ *)
(* Bit-parallel lane loop: the same cycle driver, advancing a whole
   pack of programs per iteration.  The control fabric (full, stall,
   rollback, ue, tags) lives in packed words/word arrays; register
   values in the SoA lane state.  Every decision the scalar loop makes
   per run is made here per lane, in the same per-cycle order, so a
   lane's outcome, stats and observer view are bit-identical to a solo
   scalar run of the same program.

   Injection hooks are not supported: lane drivers only engage for
   runs whose injection is absent or the physical [no_injection]
   record (structural mutants).  [faulty] relaxes the missing-tag
   asserts exactly like the scalar loop's [inject <> None].

   Work accounting goes into the caller's ledger; any exception means
   the caller discards it and replays each lane through the scalar
   path, which reproduces behaviour and counters exactly.             *)
(* ------------------------------------------------------------------ *)

type lane_result = {
  lr_outcome : outcome;
  lr_stats : stats;
  lr_divergence : int;
      (* first cycle a stall/rollback word split this lane from the
         pack's majority; -1 = never diverged *)
}

type lane_obs = {
  lob_pre_edge :
    cycle:int -> Stall_engine.lane_signals -> tags:int array array ->
    running:int -> unit;
      (* after signal evaluation, before the clock edge; [tags] are
         the pre-shift tags (-1 = none), stage-major, lane-indexed *)
  lob_post_edge :
    cycle:int -> Stall_engine.lane_signals -> tags:int array array ->
    running:int -> unit;
      (* after the clock edge commits, tags still pre-shift *)
  lob_retire : cycle:int -> lane:int -> tag:int -> rollback:string option -> unit;
      (* after [lob_post_edge], in (tag, kind) order per lane *)
}

let no_lane_obs =
  {
    lob_pre_edge = (fun ~cycle:_ _ ~tags:_ ~running:_ -> ());
    lob_post_edge = (fun ~cycle:_ _ ~tags:_ ~running:_ -> ());
    lob_retire = (fun ~cycle:_ ~lane:_ ~tag:_ ~rollback:_ -> ());
  }

type lane_session = {
  lns_c : compiled;
  lns_state : State.lanes;
  lns_inst : Hw.Plan.lanes;
  lns_bound : State.lanes_bound;
}

let lanes_session ?capacity c =
  Obs.Counters.bump Obs.Counters.Sessions;
  (* Bind the lanes engine to the fold-only sibling tape; keep the
     caller's transform so a [rebind]ed compiled still seeds its own
     initial values through the sibling's slot map. *)
  let lc = { (Lazy.force c.c_lanes) with c_tr = c.c_tr } in
  let state = State.create_lanes ?capacity lc.c_tr.Transform.machine in
  let inst = Hw.Plan.lanes ?capacity lc.c_plan in
  let bound = State.bind_lanes ~extern:(Hashtbl.mem lc.c_free) state inst in
  { lns_c = lc; lns_state = state; lns_inst = inst; lns_bound = bound }

let lanes_state ls = ls.lns_state

let local_lane_sessions : (compiled * lane_session) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let local_lanes_session c =
  let cache = Domain.DLS.get local_lane_sessions in
  match List.assq_opt c !cache with
  | Some s -> s
  | None ->
    let s = lanes_session c in
    cache := take 8 ((c, s) :: !cache);
    s

(* get_bool on a wide slot is a nonzero test; mirror that when
   lifting a slot to a packed word. *)
let word_of_slot inst ~act s =
  if Hw.Plan.lanes_is_bool inst s then Hw.Plan.lanes_word inst s
  else begin
    let v = Hw.Plan.lanes_ints inst s in
    let w = ref 0 in
    for l = 0 to act - 1 do
      if v.(l) <> 0 then w := !w lor (1 lsl l)
    done;
    !w
  end

let run_lanes_session ?(ext = fun ~stage:_ ~cycle:_ -> false)
    ?(cancel = Exec.Cancel.never) ?(obs = no_lane_obs) ?(faulty = false)
    ~ledger ~inits ~stop_afters ls =
  Obs.Span.with_span "pipesem.run_lanes" @@ fun () ->
  let c = ls.lns_c in
  let t = c.c_tr in
  let m = t.Transform.machine in
  let n = m.Machine.Spec.n_stages in
  let act = Array.length inits in
  if Array.length stop_afters <> act then
    invalid_arg "Pipesem.run_lanes_session: inits/stop_afters length mismatch";
  State.reset_lanes ~ledger ~inits ls.lns_state;
  Hw.Plan.lanes_set_active ls.lns_inst act;
  let inst = ls.lns_inst in
  let all = Hw.Lanes.mask_of_count act in
  (* WORK geometry comes from the scalar twin ([work_equiv]) so lane
     packs account the same per-program op counts as the scalar gated
     engine; gating and group ranges come from the real bound plan. *)
  let wplan = Hw.Plan.work_equiv c.c_plan in
  let tape_len = Hw.Plan.n_instrs wplan in
  let gated = Hw.Plan.is_segmented c.c_plan in
  let ctrl_len = Hw.Plan.n_ctrl_instrs wplan in
  let rb_index = List.mapi (fun i (sp, _) -> (sp, i)) c.c_rollbacks in
  let deadlock_window = (4 * n) + 64 in
  let maxc = Array.map (fun stop -> (stop * 4 * n) + 10_000) stop_afters in
  let fullb = Array.make n 0 in
  let tags = Array.init n (fun _ -> Array.make act (-1)) in
  Array.fill tags.(0) 0 act 0;
  let old_tags = Array.init n (fun _ -> Array.make act (-1)) in
  let running = ref all in
  let cycle = ref 0 in
  let retired = Array.make act 0 in
  let idle = Array.make act 0 in
  let out = Array.make act Out_of_cycles in
  let out_cycles = Array.make act 0 in
  let fetch_stall = Array.make act 0 in
  let dhaz_c = Array.make act 0 in
  let ext_c = Array.make act 0 in
  let rollbacks = Array.make act 0 in
  let squashed = Array.make act 0 in
  let diverged = Array.make act (-1) in
  let deep = Array.make act (-1) in
  let fspec : Fwd_spec.speculation option array = Array.make act None in
  let deepw = Array.make n 0 in
  let taken = Array.make n 0 in
  let deactivate l oc =
    running := Hw.Lanes.clear !running l;
    out.(l) <- oc;
    out_cycles.(l) <- (match oc with Out_of_cycles -> maxc.(l) | _ -> !cycle);
    Obs.Counters.ledger_add ledger Obs.Counters.Sim_cycles out_cycles.(l);
    Obs.Counters.ledger_add ledger Obs.Counters.Sim_retired retired.(l)
  in
  (* stop_after <= 0 completes without entering the loop, like the
     scalar while condition *)
  for l = 0 to act - 1 do
    if stop_afters.(l) <= 0 then begin
      deactivate l Completed;
      out_cycles.(l) <- 0
    end
  done;
  while !running <> 0 do
    Exec.Cancel.check cancel;
    for l = 0 to act - 1 do
      if Hw.Lanes.test !running l && !cycle >= maxc.(l) then
        deactivate l Out_of_cycles
    done;
    if !running <> 0 then begin
      let run_mask = !running in
      let n_running = Hw.Lanes.popcount run_mask in
      (* ---- begin: bind free inputs, evaluate the pack's signals ---- *)
      State.load_lanes ls.lns_bound;
      let ext_now = Array.init n (fun k -> ext ~stage:k ~cycle:!cycle) in
      for k = 0 to n - 1 do
        Hw.Plan.lanes_set_word inst c.c_full_slots.(k)
          (if k = 0 then all else fullb.(k));
        Hw.Plan.lanes_set_word inst c.c_ext_slots.(k)
          (if ext_now.(k) then all else 0)
      done;
      if gated then Hw.Plan.run_lanes_control inst
      else Hw.Plan.run_lanes inst;
      Obs.Counters.ledger_add ledger Obs.Counters.Plan_runs n_running;
      Obs.Counters.ledger_add ledger Obs.Counters.Plan_ops
        ((if gated then ctrl_len else tape_len) * n_running);
      let dhaz =
        Array.init n (fun k ->
            word_of_slot inst ~act c.c_dhaz_slots.(k) land run_mask)
      in
      let extw =
        Array.init n (fun k -> if ext_now.(k) then run_mask else 0)
      in
      let spec_words =
        List.map
          (fun (sp, slot) -> (sp, word_of_slot inst ~act slot land run_mask))
          c.c_spec_slots
      in
      let misp = Array.make n 0 in
      List.iter
        (fun ((sp : Fwd_spec.speculation), w) ->
          misp.(sp.Fwd_spec.resolve_stage) <-
            misp.(sp.Fwd_spec.resolve_stage) lor w)
        spec_words;
      let s =
        Stall_engine.compute_lanes ~mask:run_mask ~fullb ~dhaz ~ext:extw
          ~mispredict:misp
      in
      (* ---- divergence mask: lanes leaving the pack's majority ---- *)
      let flag w =
        let wr = w land run_mask in
        if wr <> 0 && wr <> run_mask then
          Hw.Lanes.iter ~mask:(Hw.Lanes.minority ~mask:run_mask w) (fun l ->
              if diverged.(l) < 0 then diverged.(l) <- !cycle)
      in
      for k = 0 to n - 1 do
        flag s.Stall_engine.l_stall.(k);
        flag s.Stall_engine.l_rollback.(k)
      done;
      obs.lob_pre_edge ~cycle:!cycle s ~tags ~running:run_mask;
      (* ---- deepest rollback and firing speculation per lane ---- *)
      Array.fill deep 0 act (-1);
      Array.fill fspec 0 act None;
      Array.fill deepw 0 n 0;
      Array.fill taken 0 n 0;
      for k = 0 to n - 1 do
        let w = s.Stall_engine.l_rollback.(k) in
        if w <> 0 then
          for l = 0 to act - 1 do
            if Hw.Lanes.test w l then deep.(l) <- k
          done
      done;
      for l = 0 to act - 1 do
        if deep.(l) >= 0 then deepw.(deep.(l)) <- Hw.Lanes.set deepw.(deep.(l)) l
      done;
      let fires =
        List.map
          (fun ((sp : Fwd_spec.speculation), w) ->
            let k = sp.Fwd_spec.resolve_stage in
            let f = deepw.(k) land w land lnot taken.(k) in
            taken.(k) <- taken.(k) lor f;
            Hw.Lanes.iter ~mask:f (fun l -> fspec.(l) <- Some sp);
            (sp, f))
          spec_words
      in
      (* ---- on-demand groups, all before any commit: register-file
         reads dispatch through the live state rows, so every group
         the edge consumes must evaluate while state is still
         pre-edge.  The ledger mirrors the scalar gated engine: each
         lane pays for exactly the groups its own stages fired. ---- *)
      if gated then begin
        for k = 0 to n - 1 do
          let mask = s.Stall_engine.l_ue.(k) in
          if mask <> 0 then begin
            Hw.Plan.run_lanes_group inst k;
            Obs.Counters.ledger_add ledger Obs.Counters.Plan_ops
              (Hw.Plan.group_instrs wplan k * Hw.Lanes.popcount mask)
          end
        done;
        List.iter
          (fun (sp, f) ->
            if f <> 0 then begin
              let g = n + List.assq sp rb_index in
              Hw.Plan.run_lanes_group inst g;
              Obs.Counters.ledger_add ledger Obs.Counters.Plan_ops
                (Hw.Plan.group_instrs wplan g * Hw.Lanes.popcount f)
            end)
          fires
      end;
      (* ---- clock edge: stage writes then rollback writes ---- *)
      for k = 0 to n - 1 do
        let mask = s.Stall_engine.l_ue.(k) in
        if mask <> 0 then
          Obs.Counters.ledger_add ledger Obs.Counters.Cells_written
            (Machine.Commit.lanes_stage_updates inst ls.lns_state ~mask
               c.c_stages.(k))
      done;
      List.iter
        (fun (sp, f) ->
          if f <> 0 then
            Obs.Counters.ledger_add ledger Obs.Counters.Cells_written
              (Machine.Commit.lanes_writes_updates inst ls.lns_state ~mask:f
                 (List.assq sp c.c_rollbacks)))
        fires;
      obs.lob_post_edge ~cycle:!cycle s ~tags ~running:run_mask;
      (* ---- retirements (kept per lane for the sorted callbacks) ---- *)
      let rets : (int * string option) list array = Array.make act [] in
      for l = 0 to act - 1 do
        if Hw.Lanes.test run_mask l then begin
          if Hw.Lanes.test s.Stall_engine.l_ue.(n - 1) l then begin
            let tag = tags.(n - 1).(l) in
            if tag >= 0 then rets.(l) <- (tag, None) :: rets.(l)
            else if not faulty then
              invalid_arg "Pipesem.run_lanes_session: retiring stage lost its tag"
          end;
          (match fspec.(l) with
          | Some sp when sp.Fwd_spec.retires ->
            let tag = tags.(deep.(l)).(l) in
            if tag >= 0 then
              rets.(l) <- (tag, Some sp.Fwd_spec.spec_label) :: rets.(l)
            else if not faulty then
              invalid_arg "Pipesem.run_lanes_session: rollback lost its tag"
          | Some _ | None -> ());
          (* Normal before Via_rollback at equal tags, like the scalar
             [List.sort compare] on retire kinds. *)
          rets.(l) <-
            List.sort
              (fun (t1, k1) (t2, k2) ->
                if t1 <> t2 then compare t1 t2 else compare k1 k2)
              rets.(l)
        end
      done;
      (* ---- squashed (evicted, non-retiring) instructions ---- *)
      for l = 0 to act - 1 do
        if Hw.Lanes.test run_mask l && deep.(l) >= 0 then begin
          rollbacks.(l) <- rollbacks.(l) + 1;
          for j = 0 to deep.(l) do
            let tg = tags.(j).(l) in
            if
              tg >= 0
              && (not (List.exists (fun (t', _) -> t' = tg) rets.(l)))
              && Hw.Lanes.test s.Stall_engine.l_full.(j) l
            then squashed.(l) <- squashed.(l) + 1
          done
        end
      done;
      (* ---- tag shift ---- *)
      for st = 0 to n - 1 do
        Array.blit tags.(st) 0 old_tags.(st) 0 act
      done;
      for st = n - 1 downto 1 do
        let rbup = s.Stall_engine.l_rollback_up.(st) in
        let ue1 = s.Stall_engine.l_ue.(st - 1) in
        let stf = s.Stall_engine.l_stall.(st) land s.Stall_engine.l_full.(st) in
        let cur = tags.(st) in
        let prev = old_tags.(st - 1) in
        let self = old_tags.(st) in
        for l = 0 to act - 1 do
          if Hw.Lanes.test run_mask l then
            cur.(l) <-
              (if Hw.Lanes.test rbup l then -1
               else if Hw.Lanes.test ue1 l then prev.(l)
               else if Hw.Lanes.test stf l then self.(l)
               else -1)
        done
      done;
      for l = 0 to act - 1 do
        if Hw.Lanes.test run_mask l then
          if deep.(l) >= 0 then (
            match fspec.(l) with
            | Some sp ->
              let b = old_tags.(deep.(l)).(l) in
              let base = if b >= 0 then b else 0 in
              tags.(0).(l) <-
                base + (if sp.Fwd_spec.retires then 1 else 0)
            | None -> (* cannot happen; keep the fetch tag *) ())
          else if Hw.Lanes.test s.Stall_engine.l_ue.(0) l then begin
            let b = old_tags.(0).(l) in
            tags.(0).(l) <- (if b >= 0 then b else 0) + 1
          end
      done;
      let fb' = Stall_engine.next_fullb_lanes ~mask:run_mask s in
      Array.blit fb' 0 fullb 0 n;
      (* ---- statistics, retire callbacks, liveness ---- *)
      let stall0 = s.Stall_engine.l_stall.(0) in
      let anyd = Array.fold_left ( lor ) 0 dhaz in
      let any_ext = Array.exists (fun b -> b) ext_now in
      let ue_any = Array.fold_left ( lor ) 0 s.Stall_engine.l_ue in
      for l = 0 to act - 1 do
        if Hw.Lanes.test run_mask l then begin
          if Hw.Lanes.test stall0 l then fetch_stall.(l) <- fetch_stall.(l) + 1;
          if Hw.Lanes.test anyd l then dhaz_c.(l) <- dhaz_c.(l) + 1;
          if any_ext then ext_c.(l) <- ext_c.(l) + 1;
          List.iter
            (fun (tag, rb) ->
              retired.(l) <- retired.(l) + 1;
              obs.lob_retire ~cycle:!cycle ~lane:l ~tag ~rollback:rb)
            rets.(l);
          if Hw.Lanes.test ue_any l || rets.(l) <> [] then idle.(l) <- 0
          else idle.(l) <- idle.(l) + 1
        end
      done;
      incr cycle;
      for l = 0 to act - 1 do
        if Hw.Lanes.test run_mask l then
          if retired.(l) >= stop_afters.(l) then deactivate l Completed
          else if idle.(l) > deadlock_window then deactivate l Deadlocked
      done
    end
  done;
  Array.init act (fun l ->
      {
        lr_outcome = out.(l);
        lr_stats =
          {
            cycles = out_cycles.(l);
            retired = retired.(l);
            fetch_stall_cycles = fetch_stall.(l);
            dhaz_cycles = dhaz_c.(l);
            ext_cycles = ext_c.(l);
            rollbacks = rollbacks.(l);
            squashed = squashed.(l);
          };
        lr_divergence = diverged.(l);
      })

let run ?ext ?callbacks ?inject ?cancel ?max_cycles ~stop_after t =
  run_compiled ?ext ?callbacks ?inject ?cancel ?max_cycles ~stop_after
    (compile t)

(* ------------------------------------------------------------------ *)
(* Reference engine: the original tree-walking interpreter with its
   per-cycle string-keyed overlay.  Kept as a documented compatibility
   shim: the compiled path is benchmarked and property-checked against
   it (same driver loop, so any divergence is an evaluation bug).      *)
(* ------------------------------------------------------------------ *)

let reference_engine (t : Transform.t) state =
  let m = t.Transform.machine in
  let n = m.Machine.Spec.n_stages in
  let base_env = State.eval_env state in
  let overlay : (string, Hw.Bitvec.t) Hashtbl.t = Hashtbl.create 64 in
  let env =
    {
      Hw.Eval.lookup_input =
        (fun name ->
          match Hashtbl.find_opt overlay name with
          | Some v -> v
          | None -> base_env.Hw.Eval.lookup_input name);
      lookup_file = base_env.Hw.Eval.lookup_file;
    }
  in
  let eng_begin ~cycle:_ ~fullb ~ext_now =
    Hashtbl.reset overlay;
    for k = 0 to n - 1 do
      Hashtbl.replace overlay (Transform.full_signal k)
        (bool_bv (k = 0 || fullb.(k)));
      Hashtbl.replace overlay (Transform.ext_signal k) (bool_bv ext_now.(k))
    done;
    List.iter
      (fun (name, e) -> Hashtbl.replace overlay name (Hw.Eval.eval env e))
      t.Transform.signals
  in
  let eng_lookup name =
    match Hashtbl.find_opt overlay name with
    | Some v -> Some v
    | None -> (
      match Machine.State.get state name with
      | Machine.Value.Scalar v -> Some v
      | Machine.Value.File _ -> None
      | exception Invalid_argument _ -> None)
  in
  {
    eng_begin;
    eng_lookup;
    eng_dhaz =
      (fun k ->
        Hw.Bitvec.to_bool (Hashtbl.find overlay t.Transform.stage_dhaz.(k)));
    eng_mispredict =
      (fun sp -> Hw.Eval.eval_bool env sp.Fwd_spec.mispredict);
    eng_stage_updates =
      (fun k -> Machine.Commit.stage_updates m ~stage:k ~env state);
    eng_rollback_updates =
      (fun sp ->
        Machine.Commit.writes_updates m ~writes:sp.Fwd_spec.rollback_writes
          ~env state);
  }

let run_reference ?ext ?callbacks ?inject ?cancel ?max_cycles ~stop_after
    (t : Transform.t) =
  Obs.Span.with_span "pipesem.run_reference" @@ fun () ->
  let state = State.create t.Transform.machine in
  run_loop ~engine:(reference_engine t state) ~state ?ext ?callbacks ?inject
    ?cancel ?max_cycles ~stop_after t

let cpi s = if s.retired = 0 then infinity else float_of_int s.cycles /. float_of_int s.retired
