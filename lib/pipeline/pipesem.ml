module State = Machine.State

type ext_model = stage:int -> cycle:int -> bool

type retire_kind =
  | Normal
  | Via_rollback of string

type cycle_record = {
  cycle : int;
  full : bool array;
  stall : bool array;
  dhaz : bool array;
  ext : bool array;
  rollback : bool array;
  ue : bool array;
  tags : int option array;
}

type callbacks = {
  on_signals : cycle:int -> (string -> Hw.Bitvec.t option) -> unit;
  on_cycle : cycle_record -> unit;
  on_edge : cycle_record -> Machine.State.t -> unit;
  on_retire : tag:int -> kind:retire_kind -> Machine.State.t -> unit;
}

let no_callbacks =
  {
    on_signals = (fun ~cycle:_ _ -> ());
    on_cycle = (fun _ -> ());
    on_edge = (fun _ _ -> ());
    on_retire = (fun ~tag:_ ~kind:_ _ -> ());
  }

type outcome =
  | Completed
  | Deadlocked
  | Out_of_cycles

type stats = {
  cycles : int;
  retired : int;
  fetch_stall_cycles : int;
  dhaz_cycles : int;
  ext_cycles : int;
  rollbacks : int;
  squashed : int;
}

type result = {
  outcome : outcome;
  stats : stats;
  state : Machine.State.t;
}

let bool_bv b = Hw.Bitvec.of_bool b

(* ------------------------------------------------------------------ *)
(* Fault injection.  The hooks mirror where a physical fault would sit
   in the generated machine: on the full-bit register outputs (feeding
   both the synthesized signals and the stall engine), inside the
   stall engine's input/output wiring, or on a pipeline register right
   at the clock edge (a single-event upset).                           *)
(* ------------------------------------------------------------------ *)

type injection = {
  inj_fullb : cycle:int -> bool array -> bool array;
  inj_compute :
    cycle:int ->
    compute:(dhaz:bool array -> Stall_engine.signals) ->
    dhaz:bool array ->
    Stall_engine.signals;
  inj_edge : cycle:int -> Machine.State.t -> unit;
}

let no_injection =
  {
    inj_fullb = (fun ~cycle:_ fullb -> fullb);
    inj_compute = (fun ~cycle:_ ~compute ~dhaz -> compute ~dhaz);
    inj_edge = (fun ~cycle:_ _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* The cycle driver, generic over how a cycle's combinational values
   are produced.  Both the compiled (plan) and the reference (closure)
   engines drive exactly this loop, so their schedules, statistics and
   verdicts agree by construction.                                     *)
(* ------------------------------------------------------------------ *)

type engine = {
  eng_begin : cycle:int -> fullb:bool array -> ext_now:bool array -> unit;
      (* bind the free inputs and evaluate the cycle's signals *)
  eng_lookup : string -> Hw.Bitvec.t option;  (* on_signals view *)
  eng_dhaz : int -> bool;
  eng_mispredict : Fwd_spec.speculation -> bool;
  eng_stage_updates : int -> Machine.Commit.update list;
  eng_rollback_updates : Fwd_spec.speculation -> Machine.Commit.update list;
}

let run_loop ~engine ~state ?(ext = fun ~stage:_ ~cycle:_ -> false)
    ?(callbacks = no_callbacks) ?inject ?(cancel = Exec.Cancel.never)
    ?max_cycles ~stop_after (t : Transform.t) =
  (* Under injection the control invariants the unfaulted engine
     guarantees (a firing stage holds an instruction) no longer hold;
     the loop degrades to "no tag, no retirement" instead of
     asserting. *)
  let faulty = inject <> None in
  let inject = match inject with Some i -> i | None -> no_injection in
  let m = t.Transform.machine in
  let n = m.Machine.Spec.n_stages in
  let max_cycles =
    match max_cycles with
    | Some c -> c
    | None -> (stop_after * 4 * n) + 10_000
  in
  let deadlock_window = (4 * n) + 64 in
  let fullb = Array.make n false in
  let tags = Array.make n None in
  tags.(0) <- Some 0;
  let retired = ref 0 in
  let cycle = ref 0 in
  let idle = ref 0 in
  let outcome = ref Out_of_cycles in
  let fetch_stall_cycles = ref 0 in
  let dhaz_cycles = ref 0 in
  let ext_cycles = ref 0 in
  let rollbacks = ref 0 in
  let squashed = ref 0 in
  (while !retired < stop_after && !cycle < max_cycles && !outcome <> Deadlocked
   do
     Exec.Cancel.check cancel;
     (* Bind the free inputs (full and ext per stage) and evaluate the
        synthesized signals in definition order.  A full-bit fault is
        applied to the register outputs, so it feeds the synthesized
        signals and the stall engine alike — the register itself is
        untouched. *)
     let ext_now = Array.init n (fun k -> ext ~stage:k ~cycle:!cycle) in
     let fullb_eff = inject.inj_fullb ~cycle:!cycle fullb in
     engine.eng_begin ~cycle:!cycle ~fullb:fullb_eff ~ext_now;
     callbacks.on_signals ~cycle:!cycle engine.eng_lookup;
     let dhaz = Array.init n engine.eng_dhaz in
     (* Stall engine, with the injection as middleware: input-wire
        faults perturb [dhaz], control-wire faults rewrite the
        computed signals. *)
     let mispredict ~stage ~stalled =
       (not stalled)
       && List.exists
            (fun (sp : Fwd_spec.speculation) ->
              sp.Fwd_spec.resolve_stage = stage && engine.eng_mispredict sp)
            t.Transform.speculations
     in
     let compute ~dhaz =
       Stall_engine.compute ~fullb:fullb_eff ~dhaz ~ext:ext_now ~mispredict
     in
     let s = inject.inj_compute ~cycle:!cycle ~compute ~dhaz in
     let record =
       {
         cycle = !cycle;
         full = Array.copy s.Stall_engine.full;
         stall = Array.copy s.Stall_engine.stall;
         dhaz = Array.copy dhaz;
         ext = Array.copy ext_now;
         rollback = Array.copy s.Stall_engine.rollback;
         ue = Array.copy s.Stall_engine.ue;
         tags = Array.copy tags;
       }
     in
     callbacks.on_cycle record;
     (* Which speculation fires?  Only the deepest rollback commits its
        corrective writes; everything at or above it is squashed. *)
     let deepest_rollback =
       let rec find k = if k < 0 then None else if s.rollback.(k) then Some k else find (k - 1) in
       find (n - 1)
     in
     let firing_spec =
       match deepest_rollback with
       | None -> None
       | Some k ->
         List.find_opt
           (fun (sp : Fwd_spec.speculation) ->
             sp.Fwd_spec.resolve_stage = k && engine.eng_mispredict sp)
           t.Transform.speculations
     in
     (* Collect all register updates against the pre-edge state. *)
     let updates = ref [] in
     for k = 0 to n - 1 do
       if s.ue.(k) then updates := engine.eng_stage_updates k :: !updates
     done;
     (match firing_spec with
     | None -> ()
     | Some sp -> updates := engine.eng_rollback_updates sp :: !updates);
     (* Clock edge: registers, tags, full bits.  A transient fault
        (single-event upset) flips its bit right after the edge, so
        the consistency checker observes the corrupted state exactly
        as downstream hardware would. *)
     List.iter (Machine.Commit.apply state) (List.rev !updates);
     inject.inj_edge ~cycle:!cycle state;
     callbacks.on_edge record state;
     let retirements = ref [] in
     if s.ue.(n - 1) then (
       match tags.(n - 1) with
       | Some tag -> retirements := (tag, Normal) :: !retirements
       | None -> assert faulty);
     (match (deepest_rollback, firing_spec) with
     | Some k, Some sp when sp.Fwd_spec.retires -> (
       match tags.(k) with
       | Some tag -> retirements := (tag, Via_rollback sp.Fwd_spec.spec_label) :: !retirements
       | None -> assert faulty)
     | Some _, Some _ | Some _, None | None, _ -> ());
     (* Count evicted (non-retiring) instructions. *)
     (match deepest_rollback with
     | None -> ()
     | Some k ->
       incr rollbacks;
       for j = 0 to k do
         match tags.(j) with
         | Some tag
           when not (List.exists (fun (t', _) -> t' = tag) !retirements) ->
           if s.full.(j) then incr squashed
         | Some _ | None -> ()
       done);
     (* Tag shift. *)
     let old_tags = Array.copy tags in
     for st = n - 1 downto 1 do
       tags.(st) <-
         (if s.rollback_up.(st) then None
          else if s.ue.(st - 1) then old_tags.(st - 1)
          else if s.stall.(st) && s.full.(st) then old_tags.(st)
          else None)
     done;
     (match (deepest_rollback, firing_spec) with
     | Some k, Some sp ->
       let base = match old_tags.(k) with Some tag -> tag | None -> 0 in
       tags.(0) <- Some (base + if sp.Fwd_spec.retires then 1 else 0)
     | Some k, None ->
       (* A rollback with no matching speculation cannot happen: the
          mispredict test selected one.  Keep the fetch tag. *)
       ignore k
     | None, _ ->
       if s.ue.(0) then
         tags.(0) <-
           Some ((match old_tags.(0) with Some tag -> tag | None -> 0) + 1));
     let fullb' = Stall_engine.next_fullb s in
     Array.blit fullb' 0 fullb 0 n;
     (* Statistics and liveness. *)
     if s.stall.(0) then incr fetch_stall_cycles;
     if Array.exists (fun b -> b) dhaz then incr dhaz_cycles;
     if Array.exists (fun b -> b) ext_now then incr ext_cycles;
     List.iter
       (fun (tag, kind) ->
         incr retired;
         callbacks.on_retire ~tag ~kind state)
       (List.sort compare !retirements);
     if Array.exists (fun b -> b) s.ue || !retirements <> [] then idle := 0
     else begin
       incr idle;
       if !idle > deadlock_window then outcome := Deadlocked
     end;
     incr cycle
   done);
  if !retired >= stop_after then outcome := Completed;
  Obs.Counters.add Obs.Counters.Sim_cycles !cycle;
  Obs.Counters.add Obs.Counters.Sim_retired !retired;
  {
    outcome = !outcome;
    stats =
      {
        cycles = !cycle;
        retired = !retired;
        fetch_stall_cycles = !fetch_stall_cycles;
        dhaz_cycles = !dhaz_cycles;
        ext_cycles = !ext_cycles;
        rollbacks = !rollbacks;
        squashed = !squashed;
      };
    state;
  }

(* ------------------------------------------------------------------ *)
(* Compiled engine: one evaluation plan per transformed machine.       *)
(* ------------------------------------------------------------------ *)

type compiled = {
  c_tr : Transform.t;
  c_plan : Hw.Plan.t;
  c_free : (string, unit) Hashtbl.t;  (* the $full_k / $ext_k names *)
  c_full_slots : int array;
  c_ext_slots : int array;
  c_dhaz_slots : int array;
  c_spec_slots : (Fwd_spec.speculation * int) list;     (* assq *)
  c_stages : Machine.Commit.cstage array;
  c_rollbacks : (Fwd_spec.speculation * Machine.Commit.cwrite list) list;
}

let compile (t : Transform.t) =
  Obs.Span.with_span "pipesem.compile" @@ fun () ->
  let m = t.Transform.machine in
  let n = m.Machine.Spec.n_stages in
  let b = Hw.Plan.create ~auto:true () in
  (* Free inputs first, so they exist even when no signal reads them. *)
  let c_full_slots =
    Array.init n (fun k -> Hw.Plan.input b (Transform.full_signal k) 1)
  in
  let c_ext_slots =
    Array.init n (fun k -> Hw.Plan.input b (Transform.ext_signal k) 1)
  in
  List.iter
    (fun (name, e) -> ignore (Hw.Plan.define b name e))
    t.Transform.signals;
  let c_spec_slots =
    List.map
      (fun (sp : Fwd_spec.speculation) ->
        (sp, Hw.Plan.root b sp.Fwd_spec.mispredict))
      t.Transform.speculations
  in
  let c_stages =
    Array.init n (fun k -> Machine.Commit.compile_stage m b ~stage:k)
  in
  let c_rollbacks =
    List.map
      (fun (sp : Fwd_spec.speculation) ->
        (sp, Machine.Commit.compile_writes m b sp.Fwd_spec.rollback_writes))
      t.Transform.speculations
  in
  let plan = Hw.Plan.build b in
  let c_dhaz_slots =
    Array.map
      (fun name ->
        match Hw.Plan.define_slot plan name with
        | Some s -> s
        | None -> invalid_arg ("Pipesem.compile: no dhaz signal " ^ name))
      t.Transform.stage_dhaz
  in
  let c_free = Hashtbl.create (2 * n) in
  for k = 0 to n - 1 do
    Hashtbl.replace c_free (Transform.full_signal k) ();
    Hashtbl.replace c_free (Transform.ext_signal k) ()
  done;
  {
    c_tr = t;
    c_plan = plan;
    c_free;
    c_full_slots;
    c_ext_slots;
    c_dhaz_slots;
    c_spec_slots;
    c_stages;
    c_rollbacks;
  }

let transform c = c.c_tr
let plan c = c.c_plan

(* Cross-request plan reuse: two transforms of the same shape (same
   stages, registers and synthesized signals — only initial values
   differ, the batched-path contract) can share one compiled plan.
   The returned [compiled] carries [t], so state creation and session
   resets read [t]'s init.  The structural guard is deliberately
   cheap: name-level equality catches shape drift without re-walking
   expression trees (transforms of one machine builder are
   expression-identical by construction). *)
let rebind c (t : Transform.t) =
  let m0 = c.c_tr.Transform.machine and m1 = t.Transform.machine in
  let reg_names (m : Machine.Spec.t) =
    List.map
      (fun r ->
        ( r.Machine.Spec.reg_name,
          r.Machine.Spec.width,
          r.Machine.Spec.stage,
          r.Machine.Spec.kind ))
      m.Machine.Spec.registers
  in
  if
    m0.Machine.Spec.n_stages <> m1.Machine.Spec.n_stages
    || reg_names m0 <> reg_names m1
    || List.map fst c.c_tr.Transform.signals <> List.map fst t.Transform.signals
    || c.c_tr.Transform.stage_dhaz <> t.Transform.stage_dhaz
  then invalid_arg "Pipesem.rebind: transforms differ in shape";
  { c with c_tr = t }

let plan_engine c state =
  let bound =
    State.bind_plan ~extern:(Hashtbl.mem c.c_free) state c.c_plan
  in
  let inst = State.bound_instance bound in
  let n = Array.length c.c_full_slots in
  let eng_begin ~cycle:_ ~fullb ~ext_now =
    State.load bound;
    for k = 0 to n - 1 do
      Hw.Plan.set inst c.c_full_slots.(k) (bool_bv (k = 0 || fullb.(k)));
      Hw.Plan.set inst c.c_ext_slots.(k) (bool_bv ext_now.(k))
    done;
    Hw.Plan.run inst
  in
  let eng_lookup name =
    match Hw.Plan.read_name inst name with
    | Some v -> Some v
    | None -> (
      match Machine.State.get state name with
      | Machine.Value.Scalar v -> Some v
      | Machine.Value.File _ -> None
      | exception Invalid_argument _ -> None)
  in
  {
    eng_begin;
    eng_lookup;
    eng_dhaz = (fun k -> Hw.Plan.get_bool inst c.c_dhaz_slots.(k));
    eng_mispredict =
      (fun sp -> Hw.Plan.get_bool inst (List.assq sp c.c_spec_slots));
    eng_stage_updates =
      (fun k -> Machine.Commit.stage_updates_compiled inst c.c_stages.(k));
    eng_rollback_updates =
      (fun sp ->
        Machine.Commit.writes_updates_compiled inst (List.assq sp c.c_rollbacks));
  }

(* A session: one persistent state with the plan bound to it once.
   [run_session] resets the state in place (bindings survive) and
   replays the machine on new initial contents — many programs, one
   compilation and one plan binding. *)
type session = {
  s_c : compiled;
  s_state : State.t;
  s_engine : engine;
}

let session c =
  Obs.Counters.bump Obs.Counters.Sessions;
  let state = State.create c.c_tr.Transform.machine in
  { s_c = c; s_state = state; s_engine = plan_engine c state }

let run_session ?ext ?callbacks ?inject ?cancel ?max_cycles ?init ~stop_after
    s =
  Obs.Span.with_span "pipesem.run" @@ fun () ->
  (* The reset also repairs state left dirty by a cancelled, faulted
     or raising previous run on this session. *)
  State.reset ?init s.s_c.c_tr.Transform.machine s.s_state;
  run_loop ~engine:s.s_engine ~state:s.s_state ?ext ?callbacks ?inject
    ?cancel ?max_cycles ~stop_after s.s_c.c_tr

(* Per-domain session cache, keyed by physical equality on the
   compiled machine: pool workers allocate (and plan-bind) one
   instance per domain, not per task.  Bounded so abandoned machines
   become collectable. *)
let local_sessions : (compiled * session) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let local_session c =
  let cache = Domain.DLS.get local_sessions in
  match List.assq_opt c !cache with
  | Some s -> s
  | None ->
    let s = session c in
    cache := take 8 ((c, s) :: !cache);
    s

let run_compiled ?ext ?callbacks ?inject ?cancel ?max_cycles ~stop_after c =
  run_session ?ext ?callbacks ?inject ?cancel ?max_cycles ~stop_after
    (session c)

let run ?ext ?callbacks ?inject ?cancel ?max_cycles ~stop_after t =
  run_compiled ?ext ?callbacks ?inject ?cancel ?max_cycles ~stop_after
    (compile t)

(* ------------------------------------------------------------------ *)
(* Reference engine: the original tree-walking interpreter with its
   per-cycle string-keyed overlay.  Kept as a documented compatibility
   shim: the compiled path is benchmarked and property-checked against
   it (same driver loop, so any divergence is an evaluation bug).      *)
(* ------------------------------------------------------------------ *)

let reference_engine (t : Transform.t) state =
  let m = t.Transform.machine in
  let n = m.Machine.Spec.n_stages in
  let base_env = State.eval_env state in
  let overlay : (string, Hw.Bitvec.t) Hashtbl.t = Hashtbl.create 64 in
  let env =
    {
      Hw.Eval.lookup_input =
        (fun name ->
          match Hashtbl.find_opt overlay name with
          | Some v -> v
          | None -> base_env.Hw.Eval.lookup_input name);
      lookup_file = base_env.Hw.Eval.lookup_file;
    }
  in
  let eng_begin ~cycle:_ ~fullb ~ext_now =
    Hashtbl.reset overlay;
    for k = 0 to n - 1 do
      Hashtbl.replace overlay (Transform.full_signal k)
        (bool_bv (k = 0 || fullb.(k)));
      Hashtbl.replace overlay (Transform.ext_signal k) (bool_bv ext_now.(k))
    done;
    List.iter
      (fun (name, e) -> Hashtbl.replace overlay name (Hw.Eval.eval env e))
      t.Transform.signals
  in
  let eng_lookup name =
    match Hashtbl.find_opt overlay name with
    | Some v -> Some v
    | None -> (
      match Machine.State.get state name with
      | Machine.Value.Scalar v -> Some v
      | Machine.Value.File _ -> None
      | exception Invalid_argument _ -> None)
  in
  {
    eng_begin;
    eng_lookup;
    eng_dhaz =
      (fun k ->
        Hw.Bitvec.to_bool (Hashtbl.find overlay t.Transform.stage_dhaz.(k)));
    eng_mispredict =
      (fun sp -> Hw.Eval.eval_bool env sp.Fwd_spec.mispredict);
    eng_stage_updates =
      (fun k -> Machine.Commit.stage_updates m ~stage:k ~env state);
    eng_rollback_updates =
      (fun sp ->
        Machine.Commit.writes_updates m ~writes:sp.Fwd_spec.rollback_writes
          ~env state);
  }

let run_reference ?ext ?callbacks ?inject ?cancel ?max_cycles ~stop_after
    (t : Transform.t) =
  Obs.Span.with_span "pipesem.run_reference" @@ fun () ->
  let state = State.create t.Transform.machine in
  run_loop ~engine:(reference_engine t state) ~state ?ext ?callbacks ?inject
    ?cancel ?max_cycles ~stop_after t

let cpi s = if s.retired = 0 then infinity else float_of_int s.cycles /. float_of_int s.retired
