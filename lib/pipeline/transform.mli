(** The transformation tool (paper §§3–5).

    [run] takes a prepared sequential machine, the designer's
    forwarding hints and speculation declarations, and produces the
    pipelined machine: the original stage functions with every
    non-local operand read replaced by a synthesized forwarding network
    [g_k_R], plus the hit/valid/data-hazard signal definitions the
    stall engine consumes, plus the pipelined valid bits [Qv.k] as new
    registers.

    {2 Synthesized signal names}

    Synthesized combinational signals live in a ["$"]-prefixed
    namespace so they cannot collide with designer registers:

    - ["$full_k"], ["$ext_k"] — free inputs bound by the simulator
      (pipeline full bits and external stall conditions);
    - ["$hit_<label>_<j>"] — operand [label] hits stage [j] (§4.1);
    - ["$cand_<label>_<j>"] — the value forwarded from stage [j];
    - ["$valid_<chain>_<j>"] — the §4.1 valid signal
      [Q_valid^j = Qv.j ∨ f_j_Qwe];
    - ["$g_<label>"] — the generated operand input [g_k_R];
    - ["$dhaz_<label>"] — per-operand data hazard;
    - ["$dhaz_stage_<k>"] — the stage's [dhaz_k] (OR over operands);
    - ["$Qv_<chain>.<j>"] — synthesized valid-bit {e registers}.

    Signal definitions are emitted in dependency order: a definition
    only references registers, free inputs, and earlier signals. *)

(** Where a forwarding source takes its value from. *)
type source_kind =
  | From_writer          (** stage [w] itself: the value at the input
                             of register [R] ([top = w ⟹ g = f_w_R]) *)
  | From_chain of string (** the designated forwarding register
                             instance relevant at this stage *)
  | No_source            (** no forwarding register designated: a hit
                             here always raises a data hazard *)

type source = {
  src_stage : int;
  src_kind : source_kind;
  hit_signal : string;
  cand_signal : string option;
  has_addr_compare : bool;  (** an equality tester was generated *)
  conservative : bool;
      (** the precomputed write enable / address could not be derived,
          so the hit over-approximates (correct but slower) *)
}

type rule = {
  rule_label : string;
  consumer_stage : int;
  operand_reg : string;
  operand_port : int option;  (** file read port index, [None] for scalars *)
  writer_stage : int;
  g_signal : string option;   (** [None] in interlock-only mode *)
  g_default : Hw.Expr.t;
      (** what the operand reads when no hit is active: the
          architectural register (file read at the rewritten address);
          kept so the priority property can be restated and checked
          symbolically against the generated network *)
  dhaz_signal : string;
  sources : source list;      (** ascending stage order, ending at [w] *)
}

type t = {
  base : Machine.Spec.t;
  machine : Machine.Spec.t;
      (** the pipelined data paths: original registers plus [Qv]
          registers; stage writes with forwarding spliced in *)
  options : Fwd_spec.options;
  signals : (string * Hw.Expr.t) list;  (** definition order *)
  stage_dhaz : string array;  (** per stage, the [dhaz_k] signal name *)
  speculations : Fwd_spec.speculation list;  (** operands rewritten *)
  rules : rule list;
}

exception Transform_error of string

val run :
  ?options:Fwd_spec.options ->
  ?hints:Fwd_spec.hint list ->
  ?speculations:Fwd_spec.speculation list ->
  Machine.Spec.t ->
  t
(** @raise Transform_error when the machine is not well-formed
    ({!Machine.Validate.run}) or a hint is inconsistent. *)

val digest : t -> string
(** Structural content address: both machines (registers, stage
    writes, initial values), the synthesized signals, hazard names and
    speculations, rendered and MD5-digested.  Equal digests mean the
    evaluation engines compile behaviourally identical plans, so
    session caches can key on it and survive callers rebuilding a
    structurally identical transform.  File initial values are folded
    through a rolling hash, so digesting costs far less than one
    state reset. *)

val optimize : t -> t
(** Apply {!Hw.Opt.simplify} to every synthesized signal, every stage
    write of the pipelined machine, and the speculation expressions.
    Semantics-preserving (the optimizer's contract); reduces the
    priced gate count of the generated networks, which contain many
    constant guards and dead candidate arms. *)

val full_signal : int -> string
val ext_signal : int -> string

val find_rule : t -> stage:int -> operand:Fwd_spec.operand_sel -> rule option
