(* Registers live in mutable cells so that plan bindings can capture a
   cell once and read the current value without a per-cycle hash
   lookup. *)
type cell = { mutable v : Value.t }
type t = (string, cell) Hashtbl.t

let create (m : Spec.t) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Spec.register) ->
      Hashtbl.replace tbl r.reg_name { v = Spec.initial_value m r })
    m.registers;
  tbl

let reset ?(init = []) (m : Spec.t) t =
  Obs.Counters.bump Obs.Counters.State_resets;
  List.iter
    (fun (n, _) ->
      if not (Spec.register_exists m n) then
        invalid_arg (Printf.sprintf "State.reset: unknown register %s" n))
    init;
  (* Registers are reset in place (cells survive) so plan bindings
     capturing a cell stay wired across resets.
     Refill an existing cell without allocating: register files are
     rewritten in the cell's own array (keeping session resets off the
     GC), and only entries that differ are stored — after the first
     reset the arrays share their entries with the source image, so a
     reset is a pointer scan plus the handful of entries the last run
     dirtied.  The sharing also feeds the [Value.equal] pointer
     shortcut. *)
  let refill c v =
    match (c.v, v) with
    | Value.File dst, Value.File src
      when dst != src && Array.length dst = Array.length src ->
      (* [unsafe]: i < length src = length dst. *)
      for i = 0 to Array.length src - 1 do
        let s = Array.unsafe_get src i in
        if Array.unsafe_get dst i != s then Array.unsafe_set dst i s
      done
    | _ -> c.v <- Value.copy v
  in
  List.iter
    (fun (r : Spec.register) ->
      let v =
        match List.assoc_opt r.reg_name init with
        | Some v -> Some v
        | None -> List.assoc_opt r.reg_name m.Spec.init
      in
      match (Hashtbl.find_opt t r.reg_name, v) with
      | Some c, Some v -> refill c v
      | Some c, None -> (
        match (c.v, r.kind) with
        | Value.File dst, Spec.File { addr_bits }
          when Array.length dst = 1 lsl addr_bits ->
          Array.fill dst 0 (Array.length dst) (Hw.Bitvec.zero r.width)
        | _ -> c.v <- Spec.initial_value m r)
      | None, Some v -> Hashtbl.replace t r.reg_name { v = Value.copy v }
      | None, None -> Hashtbl.replace t r.reg_name { v = Spec.initial_value m r })
    m.registers;
  (* Every spec register is now present, so names the spec does not
     know — added by [set] during an instrumented run — exist only if
     the table outgrew the spec; scan for them only then. *)
  if Hashtbl.length t > List.length m.registers then begin
    let extras =
      Hashtbl.fold
        (fun n _ acc -> if Spec.register_exists m n then acc else n :: acc)
        t []
    in
    List.iter (Hashtbl.remove t) extras
  end

let get t name =
  match Hashtbl.find_opt t name with
  | Some c -> c.v
  | None -> invalid_arg (Printf.sprintf "State.get: unknown register %s" name)

let set t name v =
  match Hashtbl.find_opt t name with
  | Some c -> c.v <- v
  | None -> Hashtbl.replace t name { v }

let get_scalar t name = Value.read_scalar (get t name)
let set_scalar t name v = set t name (Value.Scalar v)
let read_file t name addr = Value.read_file (get t name) addr

let write_file t name ~addr ~data =
  Value.write_file (get t name) addr data

let eval_env t =
  {
    Hw.Eval.lookup_input =
      (fun n ->
        match Hashtbl.find_opt t n with
        | Some { v = Value.Scalar v } -> v
        | Some { v = Value.File _ } ->
          raise (Hw.Eval.Eval_error (n ^ " is a register file, not a scalar"))
        | None -> raise Not_found);
    Hw.Eval.lookup_file =
      (fun f addr ->
        match Hashtbl.find_opt t f with
        | Some { v = Value.File _ as v } -> Value.read_file v addr
        | Some { v = Value.Scalar _ } ->
          raise (Hw.Eval.Eval_error (f ^ " is a scalar, not a register file"))
        | None -> raise Not_found);
  }

type bound = {
  instance : Hw.Plan.instance;
  loads : (int * cell) array;  (* input slot <- cell, refreshed by [load] *)
}

let bind_plan ?(extern = fun _ -> false) t plan =
  Obs.Counters.bump Obs.Counters.Plan_binds;
  let loads = ref [] in
  Hw.Plan.iter_inputs plan (fun name ~slot ~width:_ ->
      match Hashtbl.find_opt t name with
      | Some ({ v = Value.Scalar _ } as c) -> loads := (slot, c) :: !loads
      | Some { v = Value.File _ } ->
        raise (Hw.Eval.Eval_error (name ^ " is a register file, not a scalar"))
      | None ->
        if not (extern name) then
          raise (Hw.Eval.Eval_error ("unknown input " ^ name)));
  let instance = Hw.Plan.instance plan in
  Hw.Plan.iter_files plan (fun name ~index:_ ~width:_ ->
      match Hashtbl.find_opt t name with
      | Some ({ v = Value.File _ } as c) ->
        Hw.Plan.bind_file instance name (fun addr -> Value.read_file c.v addr)
      | Some { v = Value.Scalar _ } ->
        raise (Hw.Eval.Eval_error (name ^ " is a scalar, not a register file"))
      | None ->
        raise (Hw.Eval.Eval_error ("unknown register file " ^ name)));
  { instance; loads = Array.of_list !loads }

let bound_instance b = b.instance

let load b =
  let inst = b.instance in
  Array.iter
    (fun (slot, c) -> Hw.Plan.set inst slot (Value.read_scalar c.v))
    b.loads

let snapshot t =
  Hashtbl.fold (fun n c acc -> (n, Value.copy c.v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* A snapshot's work score is the words it scans: one per scalar, the
   array length per register file — independent of how many entries
   the blit below actually had to store. *)
let snap_words snap =
  List.fold_left
    (fun acc (_, v) ->
      acc
      + match v with Value.Scalar _ -> 1 | Value.File a -> Array.length a)
    0 snap

let snapshot_visible (m : Spec.t) t =
  let snap =
    Spec.visible_registers m
    |> List.map (fun (r : Spec.register) ->
           (r.reg_name, Value.copy (get t r.reg_name)))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Obs.Counters.add Obs.Counters.Snapshot_words (snap_words snap);
  snap

(* [snapshot_visible], but recycling [prev] (a snapshot of the same
   machine from an earlier run): matching file entries are blitted
   into [prev]'s own arrays instead of allocating fresh ones, and the
   pairs are reused wholesale.  The caller transfers ownership of
   [prev] — sessions use this to keep per-instruction trace snapshots
   off the GC, which is why a session's trace is only valid until its
   next run. *)
let snapshot_visible_reusing ~prev (m : Spec.t) t =
  let regs =
    Spec.visible_registers m
    |> List.sort (fun (a : Spec.register) b ->
           String.compare a.reg_name b.reg_name)
  in
  let rec go prev regs =
    match (regs, prev) with
    | [], _ -> []
    | (r : Spec.register) :: rtl, ((n, pv) as pair) :: ptl
      when n = r.reg_name -> (
      let cur = get t r.reg_name in
      match (pv, cur) with
      | Value.File dst, Value.File src
        when dst != src && Array.length dst = Array.length src ->
        (* [unsafe]: i < length src = length dst. *)
        for i = 0 to Array.length src - 1 do
          let s = Array.unsafe_get src i in
          if Array.unsafe_get dst i != s then Array.unsafe_set dst i s
        done;
        pair :: go ptl rtl
      | _ -> (r.reg_name, Value.copy cur) :: go ptl rtl)
    | r :: rtl, _ -> (r.reg_name, Value.copy (get t r.reg_name)) :: go [] rtl
  in
  let snap = go prev regs in
  Obs.Counters.add Obs.Counters.Snapshot_words (snap_words snap);
  snap

let restore t snap = List.iter (fun (n, v) -> set t n (Value.copy v)) snap

(* ------------------------------------------------------------------ *)
(* Structure-of-arrays lane state                                      *)
(* ------------------------------------------------------------------ *)

(* The lane mirror of [t]: one record per register carrying all lanes'
   values side by side — a packed word for width-1 scalars, a raw int
   per lane for wider ones, an int array per lane for files.  Any
   shape or width problem raises immediately; lane drivers catch,
   discard their counter ledger and fall back to the scalar path, so
   the observable behaviour (and WORK counters) match the scalar run
   by construction. *)

type lword = { mutable word : int }

type lane_value =
  | Lbool of lword
  | Lints of int array  (* lane -> value *)
  | Lfile of int array array  (* lane -> contents; inner rows replaceable *)

(* [lc_dirty] is a lane mask of writes since the last
   [snapshot_visible_lanes]: bit [l] set means lane [l]'s value may
   have changed.  Snapshots alias the previous snapshot's storage for
   clean lanes instead of copying, which turns the per-instruction
   trace of a mostly-idle register file (IMEM, MEM) from a deep copy
   into a pointer. *)
type lane_cell = {
  lc_width : int;
  lc_value : lane_value;
  mutable lc_dirty : int;
  lc_srcs : Hw.Bitvec.t array option array;
      (* [Lfile] cells only (else [||]): per lane, the physical image
         array last applied by [reset_lanes], valid while the lane's
         row is untouched since.  Lets a reset from the same shared
         image (e.g. an all-zero data memory) skip the row outright. *)
}

type lanes = {
  ls_spec : Spec.t;
  ls_cap : int;
  mutable ls_active : int;
  ls_tbl : (string, lane_cell) Hashtbl.t;
}

let create_lanes ?(capacity = Hw.Lanes.max_lanes) (m : Spec.t) =
  if capacity < 1 || capacity > Hw.Lanes.max_lanes then
    invalid_arg (Printf.sprintf "State.create_lanes: capacity %d" capacity);
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Spec.register) ->
      let value =
        match r.kind with
        | Spec.Simple ->
          if r.width = 1 then Lbool { word = 0 }
          else Lints (Array.make capacity 0)
        | Spec.File { addr_bits } ->
          Lfile (Array.init capacity (fun _ -> Array.make (1 lsl addr_bits) 0))
      in
      let lc_srcs =
        match r.kind with
        | Spec.File _ -> Array.make capacity None
        | Spec.Simple -> [||]
      in
      Hashtbl.replace tbl r.reg_name
        { lc_width = r.width; lc_value = value; lc_dirty = -1; lc_srcs })
    m.registers;
  { ls_spec = m; ls_cap = capacity; ls_active = capacity; ls_tbl = tbl }

let lanes_spec ln = ln.ls_spec
let lanes_capacity ln = ln.ls_cap
let lanes_active ln = ln.ls_active

let lanes_cell ln name =
  match Hashtbl.find_opt ln.ls_tbl name with
  | Some c -> c
  | None ->
    invalid_arg (Printf.sprintf "State.lanes_cell: unknown register %s" name)

let lane_err fmt = Printf.ksprintf invalid_arg fmt

let scalar_int ~what (r : Spec.register) v =
  match v with
  | Value.Scalar bv ->
    if Hw.Bitvec.width bv <> r.width then
      lane_err "State.%s: %s: width %d, register expects %d" what r.reg_name
        (Hw.Bitvec.width bv) r.width;
    Hw.Bitvec.to_int bv
  | Value.File _ ->
    lane_err "State.%s: %s is a scalar, got a register file" what r.reg_name

(* The lane mirror of [reset]: lane [l] takes its values from
   [inits.(l)], falling back to the machine image and then zero, like
   the scalar reset.  The lane count becomes [Array.length inits].

   Dirty discipline: a reset marks a lane dirty only where the new
   value actually differs from the live one, so a run over a pack the
   state has already seen keeps the previous run's snapshots aliasable.
   File rows compare entry-by-entry — except when the lane's row was
   reset from the physically same image array and never written since
   ([lc_srcs]): then the row is known equal and is skipped without
   being read, which is what makes a 4k-entry shared zero memory free
   instead of a 4k-word scan per lane per reset. *)
let reset_lanes ~ledger ~inits ln =
  let m = ln.ls_spec in
  let act = Array.length inits in
  if act < 1 || act > ln.ls_cap then
    lane_err "State.reset_lanes: %d lanes (capacity %d)" act ln.ls_cap;
  ln.ls_active <- act;
  Obs.Counters.ledger_add ledger Obs.Counters.State_resets act;
  Array.iter
    (fun init ->
      List.iter
        (fun (n, _) ->
          if not (Spec.register_exists m n) then
            invalid_arg (Printf.sprintf "State.reset: unknown register %s" n))
        init)
    inits;
  let amask = Hw.Lanes.mask_of_count act in
  List.iter
    (fun (r : Spec.register) ->
      let cell = Hashtbl.find ln.ls_tbl r.reg_name in
      let dirty = ref cell.lc_dirty in
      let dflt = List.assoc_opt r.reg_name m.Spec.init in
      let value_for l =
        match List.assoc_opt r.reg_name inits.(l) with
        | Some _ as v -> v
        | None -> dflt
      in
      (match cell.lc_value with
      | Lbool b ->
        let w = ref 0 in
        for l = 0 to act - 1 do
          match value_for l with
          | Some v ->
            if scalar_int ~what:"reset_lanes" r v <> 0 then
              w := !w lor (1 lsl l)
          | None -> ()
        done;
        dirty := !dirty lor ((b.word lxor !w) land amask);
        b.word <- (b.word land lnot amask) lor (!w land amask)
      | Lints a ->
        for l = 0 to act - 1 do
          let nv =
            match value_for l with
            | Some v -> scalar_int ~what:"reset_lanes" r v
            | None -> 0
          in
          if a.(l) <> nv then begin
            a.(l) <- nv;
            dirty := !dirty lor (1 lsl l)
          end
        done
      | Lfile rows ->
        let default_len =
          match r.kind with
          | Spec.File { addr_bits } -> 1 lsl addr_bits
          | Spec.Simple -> assert false
        in
        let srcs = cell.lc_srcs in
        for l = 0 to act - 1 do
          match value_for l with
          | Some (Value.File src) -> (
            match srcs.(l) with
            | Some s when s == src && Array.length rows.(l) = Array.length src
              ->
              (* untouched since the same image was applied: equal *)
              ()
            | _ ->
              let len = Array.length src in
              let changed = ref false in
              let row =
                if Array.length rows.(l) = len then rows.(l)
                else begin
                  let fresh = Array.make len 0 in
                  rows.(l) <- fresh;
                  changed := true;
                  fresh
                end
              in
              for i = 0 to len - 1 do
                let bv = Array.unsafe_get src i in
                if Hw.Bitvec.width bv <> r.width then
                  lane_err
                    "State.reset_lanes: %s[%d]: width %d, file expects %d"
                    r.reg_name i (Hw.Bitvec.width bv) r.width;
                let nv = Hw.Bitvec.to_int bv in
                if Array.unsafe_get row i <> nv then begin
                  Array.unsafe_set row i nv;
                  changed := true
                end
              done;
              srcs.(l) <- Some src;
              if !changed then dirty := !dirty lor (1 lsl l))
          | Some (Value.Scalar _) ->
            lane_err "State.reset_lanes: %s is a register file, got a scalar"
              r.reg_name
          | None ->
            let row = rows.(l) in
            if Array.length row = default_len then begin
              let changed = ref false in
              for i = 0 to default_len - 1 do
                if Array.unsafe_get row i <> 0 then begin
                  Array.unsafe_set row i 0;
                  changed := true
                end
              done;
              if !changed then dirty := !dirty lor (1 lsl l)
            end
            else begin
              rows.(l) <- Array.make default_len 0;
              dirty := !dirty lor (1 lsl l)
            end;
            srcs.(l) <- None
        done);
      cell.lc_dirty <- !dirty)
    m.registers

type lanes_bound = {
  lb_inst : Hw.Plan.lanes;
  lb_bools : (int * lword) array;  (* input slot <- packed word *)
  lb_ints : (int * int array) array;  (* input slot <- lane row *)
  lb_state : lanes;
}

let bind_lanes ?(extern = fun _ -> false) ln pl =
  Obs.Counters.bump Obs.Counters.Plan_binds;
  let plan = Hw.Plan.lanes_plan pl in
  let bools = ref [] and ints = ref [] in
  Hw.Plan.iter_inputs plan (fun name ~slot ~width ->
      match Hashtbl.find_opt ln.ls_tbl name with
      | Some cell -> (
        if cell.lc_width <> width then
          raise
            (Hw.Eval.Eval_error
               (Printf.sprintf "input %s: stored width %d, expression expects %d"
                  name cell.lc_width width));
        match cell.lc_value with
        | Lbool b -> bools := (slot, b) :: !bools
        | Lints a -> ints := (slot, a) :: !ints
        | Lfile _ ->
          raise (Hw.Eval.Eval_error (name ^ " is a register file, not a scalar")))
      | None ->
        if not (extern name) then
          raise (Hw.Eval.Eval_error ("unknown input " ^ name)));
  Hw.Plan.iter_files plan (fun name ~index:_ ~width ->
      match Hashtbl.find_opt ln.ls_tbl name with
      | Some { lc_width; lc_value = Lfile rows; _ } ->
        if lc_width <> width then
          raise
            (Hw.Eval.Eval_error
               (Printf.sprintf "file %s: stored width %d, expression expects %d"
                  name lc_width width));
        Hw.Plan.lanes_bind_file pl name rows
      | Some _ ->
        raise (Hw.Eval.Eval_error (name ^ " is a scalar, not a register file"))
      | None -> raise (Hw.Eval.Eval_error ("unknown register file " ^ name)));
  {
    lb_inst = pl;
    lb_bools = Array.of_list !bools;
    lb_ints = Array.of_list !ints;
    lb_state = ln;
  }

let lanes_bound_instance lb = lb.lb_inst

let load_lanes lb =
  let pl = lb.lb_inst in
  let act = lb.lb_state.ls_active in
  Array.iter (fun (slot, b) -> Hw.Plan.lanes_set_word pl slot b.word) lb.lb_bools;
  Array.iter
    (fun (slot, row) -> Array.blit row 0 (Hw.Plan.lanes_ints pl slot) 0 act)
    lb.lb_ints

(* Visible-state lane snapshots, sorted by name like the scalar ones.
   The work score mirrors the scalar [snap_words] per lane: one word
   per scalar register, the row length per file — summed over active
   lanes, and charged identically whether the snapshot physically
   copies or aliases (the ledger counts what the scalar engine would
   copy, so lane and scalar WORK rows stay bit-identical).

   [?prev] is the immediately preceding snapshot of the same run.  It
   is never mutated: cells whose [lc_dirty] mask is clear since that
   snapshot alias its storage outright, and a dirty register file
   copies only the dirty lanes' rows, aliasing the clean lanes' rows
   from [prev].  Aliasing is sound because snapshots are immutable
   once taken — the live state's own arrays are always copied, never
   shared.  Each snapshot clears the dirty masks it consumed. *)
let snapshot_visible_lanes ?prev ~ledger ln =
  let m = ln.ls_spec in
  let act = ln.ls_active in
  let regs =
    Spec.visible_registers m
    |> List.sort (fun (a : Spec.register) b ->
           String.compare a.reg_name b.reg_name)
  in
  let words = ref 0 in
  let snap_value (cell : lane_cell) prev_v =
    let dirty = cell.lc_dirty in
    cell.lc_dirty <- 0;
    match (cell.lc_value, prev_v) with
    | Lbool b, prev_v ->
      words := !words + act;
      (match prev_v with
      | Some (Lbool _ as pv) when dirty land Hw.Lanes.mask_of_count act = 0 ->
        pv
      | _ -> Lbool { word = b.word })
    | Lints _, Some (Lints _ as pv)
      when dirty land Hw.Lanes.mask_of_count act = 0 ->
      words := !words + act;
      pv
    | Lints a, _ ->
      words := !words + act;
      Lints (Array.copy a)
    | Lfile rows, Some (Lfile prows as pv)
      when Array.length prows = Array.length rows ->
      for l = 0 to act - 1 do
        words := !words + Array.length rows.(l)
      done;
      if dirty land Hw.Lanes.mask_of_count act = 0 then pv
      else begin
        let dst = Array.make (Array.length rows) [||] in
        for l = 0 to act - 1 do
          if Hw.Lanes.test dirty l then dst.(l) <- Array.copy rows.(l)
          else dst.(l) <- prows.(l)
        done;
        Lfile dst
      end
    | Lfile rows, _ ->
      let dst = Array.make (Array.length rows) [||] in
      for l = 0 to act - 1 do
        words := !words + Array.length rows.(l);
        dst.(l) <- Array.copy rows.(l)
      done;
      Lfile dst
  in
  let rec go regs prev =
    match (regs, prev) with
    | [], _ -> []
    | (r : Spec.register) :: rtl, (n, pv) :: ptl when n = r.reg_name ->
      (r.reg_name, snap_value (lanes_cell ln r.reg_name) (Some pv)) :: go rtl ptl
    | r :: rtl, _ ->
      (r.reg_name, snap_value (lanes_cell ln r.reg_name) None) :: go rtl []
  in
  let snap = go regs (match prev with Some p -> p | None -> []) in
  Obs.Counters.ledger_add ledger Obs.Counters.Snapshot_words !words;
  snap

let diff a b =
  let names = List.map fst a in
  let names_b = List.map fst b in
  if List.sort String.compare names <> List.sort String.compare names_b then
    invalid_arg "State.diff: snapshots have different shapes";
  List.filter_map
    (fun (n, va) ->
      let vb = List.assoc n b in
      if Value.equal va vb then None else Some n)
    a

let equal_on a b = diff a b = []
