(* Registers live in mutable cells so that plan bindings can capture a
   cell once and read the current value without a per-cycle hash
   lookup. *)
type cell = { mutable v : Value.t }
type t = (string, cell) Hashtbl.t

let create (m : Spec.t) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (r : Spec.register) ->
      Hashtbl.replace tbl r.reg_name { v = Spec.initial_value m r })
    m.registers;
  tbl

let reset ?(init = []) (m : Spec.t) t =
  Obs.Counters.bump Obs.Counters.State_resets;
  List.iter
    (fun (n, _) ->
      if not (Spec.register_exists m n) then
        invalid_arg (Printf.sprintf "State.reset: unknown register %s" n))
    init;
  (* Registers are reset in place (cells survive) so plan bindings
     capturing a cell stay wired across resets.
     Refill an existing cell without allocating: register files are
     rewritten in the cell's own array (keeping session resets off the
     GC), and only entries that differ are stored — after the first
     reset the arrays share their entries with the source image, so a
     reset is a pointer scan plus the handful of entries the last run
     dirtied.  The sharing also feeds the [Value.equal] pointer
     shortcut. *)
  let refill c v =
    match (c.v, v) with
    | Value.File dst, Value.File src
      when dst != src && Array.length dst = Array.length src ->
      (* [unsafe]: i < length src = length dst. *)
      for i = 0 to Array.length src - 1 do
        let s = Array.unsafe_get src i in
        if Array.unsafe_get dst i != s then Array.unsafe_set dst i s
      done
    | _ -> c.v <- Value.copy v
  in
  List.iter
    (fun (r : Spec.register) ->
      let v =
        match List.assoc_opt r.reg_name init with
        | Some v -> Some v
        | None -> List.assoc_opt r.reg_name m.Spec.init
      in
      match (Hashtbl.find_opt t r.reg_name, v) with
      | Some c, Some v -> refill c v
      | Some c, None -> (
        match (c.v, r.kind) with
        | Value.File dst, Spec.File { addr_bits }
          when Array.length dst = 1 lsl addr_bits ->
          Array.fill dst 0 (Array.length dst) (Hw.Bitvec.zero r.width)
        | _ -> c.v <- Spec.initial_value m r)
      | None, Some v -> Hashtbl.replace t r.reg_name { v = Value.copy v }
      | None, None -> Hashtbl.replace t r.reg_name { v = Spec.initial_value m r })
    m.registers;
  (* Every spec register is now present, so names the spec does not
     know — added by [set] during an instrumented run — exist only if
     the table outgrew the spec; scan for them only then. *)
  if Hashtbl.length t > List.length m.registers then begin
    let extras =
      Hashtbl.fold
        (fun n _ acc -> if Spec.register_exists m n then acc else n :: acc)
        t []
    in
    List.iter (Hashtbl.remove t) extras
  end

let get t name =
  match Hashtbl.find_opt t name with
  | Some c -> c.v
  | None -> invalid_arg (Printf.sprintf "State.get: unknown register %s" name)

let set t name v =
  match Hashtbl.find_opt t name with
  | Some c -> c.v <- v
  | None -> Hashtbl.replace t name { v }

let get_scalar t name = Value.read_scalar (get t name)
let set_scalar t name v = set t name (Value.Scalar v)
let read_file t name addr = Value.read_file (get t name) addr

let write_file t name ~addr ~data =
  Value.write_file (get t name) addr data

let eval_env t =
  {
    Hw.Eval.lookup_input =
      (fun n ->
        match Hashtbl.find_opt t n with
        | Some { v = Value.Scalar v } -> v
        | Some { v = Value.File _ } ->
          raise (Hw.Eval.Eval_error (n ^ " is a register file, not a scalar"))
        | None -> raise Not_found);
    Hw.Eval.lookup_file =
      (fun f addr ->
        match Hashtbl.find_opt t f with
        | Some { v = Value.File _ as v } -> Value.read_file v addr
        | Some { v = Value.Scalar _ } ->
          raise (Hw.Eval.Eval_error (f ^ " is a scalar, not a register file"))
        | None -> raise Not_found);
  }

type bound = {
  instance : Hw.Plan.instance;
  loads : (int * cell) array;  (* input slot <- cell, refreshed by [load] *)
}

let bind_plan ?(extern = fun _ -> false) t plan =
  Obs.Counters.bump Obs.Counters.Plan_binds;
  let loads = ref [] in
  Hw.Plan.iter_inputs plan (fun name ~slot ~width:_ ->
      match Hashtbl.find_opt t name with
      | Some ({ v = Value.Scalar _ } as c) -> loads := (slot, c) :: !loads
      | Some { v = Value.File _ } ->
        raise (Hw.Eval.Eval_error (name ^ " is a register file, not a scalar"))
      | None ->
        if not (extern name) then
          raise (Hw.Eval.Eval_error ("unknown input " ^ name)));
  let instance = Hw.Plan.instance plan in
  Hw.Plan.iter_files plan (fun name ~index:_ ~width:_ ->
      match Hashtbl.find_opt t name with
      | Some ({ v = Value.File _ } as c) ->
        Hw.Plan.bind_file instance name (fun addr -> Value.read_file c.v addr)
      | Some { v = Value.Scalar _ } ->
        raise (Hw.Eval.Eval_error (name ^ " is a scalar, not a register file"))
      | None ->
        raise (Hw.Eval.Eval_error ("unknown register file " ^ name)));
  { instance; loads = Array.of_list !loads }

let bound_instance b = b.instance

let load b =
  let inst = b.instance in
  Array.iter
    (fun (slot, c) -> Hw.Plan.set inst slot (Value.read_scalar c.v))
    b.loads

let snapshot t =
  Hashtbl.fold (fun n c acc -> (n, Value.copy c.v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* A snapshot's work score is the words it scans: one per scalar, the
   array length per register file — independent of how many entries
   the blit below actually had to store. *)
let snap_words snap =
  List.fold_left
    (fun acc (_, v) ->
      acc
      + match v with Value.Scalar _ -> 1 | Value.File a -> Array.length a)
    0 snap

let snapshot_visible (m : Spec.t) t =
  let snap =
    Spec.visible_registers m
    |> List.map (fun (r : Spec.register) ->
           (r.reg_name, Value.copy (get t r.reg_name)))
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Obs.Counters.add Obs.Counters.Snapshot_words (snap_words snap);
  snap

(* [snapshot_visible], but recycling [prev] (a snapshot of the same
   machine from an earlier run): matching file entries are blitted
   into [prev]'s own arrays instead of allocating fresh ones, and the
   pairs are reused wholesale.  The caller transfers ownership of
   [prev] — sessions use this to keep per-instruction trace snapshots
   off the GC, which is why a session's trace is only valid until its
   next run. *)
let snapshot_visible_reusing ~prev (m : Spec.t) t =
  let regs =
    Spec.visible_registers m
    |> List.sort (fun (a : Spec.register) b ->
           String.compare a.reg_name b.reg_name)
  in
  let rec go prev regs =
    match (regs, prev) with
    | [], _ -> []
    | (r : Spec.register) :: rtl, ((n, pv) as pair) :: ptl
      when n = r.reg_name -> (
      let cur = get t r.reg_name in
      match (pv, cur) with
      | Value.File dst, Value.File src
        when dst != src && Array.length dst = Array.length src ->
        (* [unsafe]: i < length src = length dst. *)
        for i = 0 to Array.length src - 1 do
          let s = Array.unsafe_get src i in
          if Array.unsafe_get dst i != s then Array.unsafe_set dst i s
        done;
        pair :: go ptl rtl
      | _ -> (r.reg_name, Value.copy cur) :: go ptl rtl)
    | r :: rtl, _ -> (r.reg_name, Value.copy (get t r.reg_name)) :: go [] rtl
  in
  let snap = go prev regs in
  Obs.Counters.add Obs.Counters.Snapshot_words (snap_words snap);
  snap

let restore t snap = List.iter (fun (n, v) -> set t n (Value.copy v)) snap

let diff a b =
  let names = List.map fst a in
  let names_b = List.map fst b in
  if List.sort String.compare names <> List.sort String.compare names_b then
    invalid_arg "State.diff: snapshots have different shapes";
  List.filter_map
    (fun (n, va) ->
      let vb = List.assoc n b in
      if Value.equal va vb then None else Some n)
    a

let equal_on a b = diff a b = []
