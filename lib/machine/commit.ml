type update =
  | Set_scalar of string * Hw.Bitvec.t
  | Write_file of string * Hw.Bitvec.t * Hw.Bitvec.t

let eval_guard env g =
  match g with None -> true | Some g -> Hw.Eval.eval_bool env g

let eval_write (m : Spec.t) ~env (w : Spec.write) =
  let r = Spec.find_register m w.dst in
  let enabled = eval_guard env w.guard in
  match r.kind with
  | Spec.File _ ->
    if enabled then
      let addr =
        match w.wr_addr with
        | Some a -> Hw.Eval.eval env a
        | None -> invalid_arg "Commit: file write without address"
      in
      [ Write_file (w.dst, addr, Hw.Eval.eval env w.value) ]
    else []
  | Spec.Simple -> (
    match r.prev_instance with
    | None -> if enabled then [ Set_scalar (w.dst, Hw.Eval.eval env w.value) ] else []
    | Some p ->
      let v =
        if enabled then Hw.Eval.eval env w.value
        else
          (* Pass-through from the previous instance. *)
          Hw.Eval.eval env (Hw.Expr.input p r.width)
      in
      [ Set_scalar (w.dst, v) ])

let stage_updates (m : Spec.t) ~stage ~env state =
  let s = Spec.stage_of m stage in
  let explicit = List.concat_map (eval_write m ~env) s.writes in
  (* Instance registers of this stage without an explicit write still
     shift from their previous instance. *)
  let written = List.map (fun (w : Spec.write) -> w.dst) s.writes in
  let shifts =
    List.filter_map
      (fun (r : Spec.register) ->
        match r.prev_instance with
        | Some p
          when r.stage = stage && not (List.mem r.reg_name written) ->
          Some (Set_scalar (r.reg_name, Value.read_scalar (State.get state p)))
        | Some _ | None -> None)
      m.registers
  in
  explicit @ shifts

let writes_updates (m : Spec.t) ~writes ~env _state =
  List.concat_map
    (fun (w : Spec.write) ->
      let r = Spec.find_register m w.dst in
      let enabled = eval_guard env w.guard in
      if not enabled then []
      else
        match r.kind with
        | Spec.File _ ->
          let addr =
            match w.wr_addr with
            | Some a -> Hw.Eval.eval env a
            | None -> invalid_arg "Commit: file write without address"
          in
          [ Write_file (w.dst, addr, Hw.Eval.eval env w.value) ]
        | Spec.Simple -> [ Set_scalar (w.dst, Hw.Eval.eval env w.value) ])
    writes

(* ---- compiled path: writes evaluated through a Plan ---- *)

type cwrite = {
  cw_dst : string;
  cw_file : bool;
  cw_value : int;        (* slot of f_k_R *)
  cw_guard : int option; (* slot of f_k_Rwe; [None] = always enabled *)
  cw_addr : int option;  (* slot of f_k_Rwa for files *)
  cw_pass : int option;  (* slot of the previous instance (pass-through) *)
}

type cstage = {
  cs_writes : cwrite list;
  cs_shifts : (string * int) list;
      (* instance registers without an explicit write: dst, slot of
         the previous instance's value *)
}

let compile_write ?(pass = true) (m : Spec.t) b (w : Spec.write) =
  let r = Spec.find_register m w.dst in
  let guard = Option.map (Hw.Plan.root b) w.guard in
  match r.kind with
  | Spec.File _ ->
    let addr =
      match w.wr_addr with
      | Some a -> Hw.Plan.root b a
      | None -> invalid_arg "Commit: file write without address"
    in
    {
      cw_dst = w.dst;
      cw_file = true;
      cw_value = Hw.Plan.root b w.value;
      cw_guard = guard;
      cw_addr = Some addr;
      cw_pass = None;
    }
  | Spec.Simple ->
    let pass_slot =
      if pass then
        Option.map
          (fun p -> Hw.Plan.root b (Hw.Expr.input p r.width))
          r.prev_instance
      else None
    in
    {
      cw_dst = w.dst;
      cw_file = false;
      cw_value = Hw.Plan.root b w.value;
      cw_guard = guard;
      cw_addr = None;
      cw_pass = pass_slot;
    }

let compile_writes (m : Spec.t) b writes =
  (* Rollback writes have no pass-through: a disabled corrective write
     simply does nothing (mirrors [writes_updates]). *)
  List.map (compile_write ~pass:false m b) writes

let compile_stage (m : Spec.t) b ~stage =
  let s = Spec.stage_of m stage in
  let writes = List.map (compile_write m b) s.writes in
  let written = List.map (fun (w : Spec.write) -> w.dst) s.writes in
  let shifts =
    List.filter_map
      (fun (r : Spec.register) ->
        match r.prev_instance with
        | Some p when r.stage = stage && not (List.mem r.reg_name written) ->
          Some
            ( r.reg_name,
              Hw.Plan.root b
                (Hw.Expr.input p (Spec.find_register m p).width) )
        | Some _ | None -> None)
      m.registers
  in
  { cs_writes = writes; cs_shifts = shifts }

(* Slot translation after {!Hw.Plan.optimize_remap}: every captured
   slot came from [Hw.Plan.root], so the remap never yields -1. *)
let remap_cwrite f (cw : cwrite) =
  {
    cw with
    cw_value = f cw.cw_value;
    cw_guard = Option.map f cw.cw_guard;
    cw_addr = Option.map f cw.cw_addr;
    cw_pass = Option.map f cw.cw_pass;
  }

let remap_cstage f (cs : cstage) =
  {
    cs_writes = List.map (remap_cwrite f) cs.cs_writes;
    cs_shifts = List.map (fun (dst, s) -> (dst, f s)) cs.cs_shifts;
  }

let cwrite_slots (cw : cwrite) acc =
  let acc = cw.cw_value :: acc in
  let acc = match cw.cw_guard with Some s -> s :: acc | None -> acc in
  let acc = match cw.cw_addr with Some s -> s :: acc | None -> acc in
  match cw.cw_pass with Some s -> s :: acc | None -> acc

let cstage_slots (cs : cstage) =
  List.fold_left
    (fun acc cw -> cwrite_slots cw acc)
    (List.map snd cs.cs_shifts) cs.cs_writes

let cwrite_updates inst (cw : cwrite) =
  let enabled =
    match cw.cw_guard with
    | None -> true
    | Some g -> Hw.Plan.get_bool inst g
  in
  if cw.cw_file then
    if enabled then
      [
        Write_file
          ( cw.cw_dst,
            Hw.Plan.get inst (Option.get cw.cw_addr),
            Hw.Plan.get inst cw.cw_value );
      ]
    else []
  else
    match cw.cw_pass with
    | None ->
      if enabled then [ Set_scalar (cw.cw_dst, Hw.Plan.get inst cw.cw_value) ]
      else []
    | Some p ->
      [
        Set_scalar
          (cw.cw_dst, Hw.Plan.get inst (if enabled then cw.cw_value else p));
      ]

let stage_updates_compiled inst (cs : cstage) =
  List.concat_map (cwrite_updates inst) cs.cs_writes
  @ List.map
      (fun (dst, slot) -> Set_scalar (dst, Hw.Plan.get inst slot))
      cs.cs_shifts

let writes_updates_compiled inst cws = List.concat_map (cwrite_updates inst) cws

let apply state updates =
  Obs.Counters.add Obs.Counters.Cells_written (List.length updates);
  List.iter
    (fun u ->
      match u with
      | Set_scalar (n, v) -> State.set_scalar state n v
      | Write_file (f, addr, data) -> State.write_file state f ~addr ~data)
    updates

(* ---- lane path: one compiled write applied across a lane mask ---- *)

(* The lane mirror of [cwrite_updates] + [apply], fused: values come
   straight from the lane slots and land in the lane cells, no update
   list is materialised.  [mask] selects the lanes this commit applies
   to (the stage's update-enable word).  The return value is the exact
   scalar [Cells_written] equivalent: one per enabled file or plain
   scalar write per lane, one per pass-through or shift write per
   masked lane — the caller stages it into its ledger.

   Width discipline: the value/pass slots were compiled from the same
   spec that sized the lane cells, so widths agree by construction;
   the [lane_err] guards catch degenerate mutants and punt the pack to
   the scalar fallback. *)

let lane_err fmt = Printf.ksprintf invalid_arg fmt

let lanes_guard inst ~mask ~act = function
  | None -> mask
  | Some g ->
    if Hw.Plan.lanes_is_bool inst g then Hw.Plan.lanes_word inst g land mask
    else begin
      (* get_bool on a wide slot is a nonzero test *)
      let va = Hw.Plan.lanes_ints inst g in
      let w = ref 0 in
      for l = 0 to act - 1 do
        if Hw.Lanes.test mask l && va.(l) <> 0 then w := !w lor (1 lsl l)
      done;
      !w
    end

let lanes_cwrite inst st ~mask (cw : cwrite) =
  let act = State.lanes_active st in
  let cell = State.lanes_cell st cw.cw_dst in
  let plan = Hw.Plan.lanes_plan inst in
  if Hw.Plan.slot_width plan cw.cw_value <> cell.State.lc_width then
    lane_err "lane commit: %s: write width %d, register expects %d" cw.cw_dst
      (Hw.Plan.slot_width plan cw.cw_value)
      cell.State.lc_width;
  let en = lanes_guard inst ~mask ~act cw.cw_guard in
  if cw.cw_file then begin
    match cell.State.lc_value with
    | State.Lfile rows ->
      let addr = Option.get cw.cw_addr in
      let srcs = cell.State.lc_srcs in
      for l = 0 to act - 1 do
        if Hw.Lanes.test en l then begin
          let row = rows.(l) in
          row.(Hw.Plan.lanes_get inst addr l land (Array.length row - 1)) <-
            Hw.Plan.lanes_get inst cw.cw_value l;
          srcs.(l) <- None
        end
      done;
      cell.State.lc_dirty <- cell.State.lc_dirty lor en;
      Hw.Lanes.popcount en
    | State.Lbool _ | State.Lints _ ->
      lane_err "lane commit: %s is a scalar, not a register file" cw.cw_dst
  end
  else
    match cw.cw_pass with
    | None ->
      (match cell.State.lc_value with
      | State.Lbool b ->
        b.State.word <-
          (b.State.word land lnot en)
          lor (Hw.Plan.lanes_word inst cw.cw_value land en)
      | State.Lints a ->
        let v = Hw.Plan.lanes_ints inst cw.cw_value in
        for l = 0 to act - 1 do
          if Hw.Lanes.test en l then a.(l) <- v.(l)
        done
      | State.Lfile _ ->
        lane_err "lane commit: %s is a register file, not a scalar" cw.cw_dst);
      cell.State.lc_dirty <- cell.State.lc_dirty lor en;
      Hw.Lanes.popcount en
    | Some p ->
      (match cell.State.lc_value with
      | State.Lbool b ->
        let src =
          (Hw.Plan.lanes_word inst cw.cw_value land en)
          lor (Hw.Plan.lanes_word inst p land mask land lnot en)
        in
        b.State.word <- (b.State.word land lnot mask) lor (src land mask)
      | State.Lints a ->
        let v = Hw.Plan.lanes_ints inst cw.cw_value in
        let pv = Hw.Plan.lanes_ints inst p in
        for l = 0 to act - 1 do
          if Hw.Lanes.test mask l then
            a.(l) <- (if Hw.Lanes.test en l then v.(l) else pv.(l))
        done
      | State.Lfile _ ->
        lane_err "lane commit: %s is a register file, not a scalar" cw.cw_dst);
      cell.State.lc_dirty <- cell.State.lc_dirty lor mask;
      Hw.Lanes.popcount mask

let lanes_shift inst st ~mask (dst, slot) =
  let act = State.lanes_active st in
  let cell = State.lanes_cell st dst in
  if Hw.Plan.slot_width (Hw.Plan.lanes_plan inst) slot <> cell.State.lc_width
  then
    lane_err "lane commit: %s: shift width %d, register expects %d" dst
      (Hw.Plan.slot_width (Hw.Plan.lanes_plan inst) slot)
      cell.State.lc_width;
  (match cell.State.lc_value with
  | State.Lbool b ->
    b.State.word <-
      (b.State.word land lnot mask)
      lor (Hw.Plan.lanes_word inst slot land mask)
  | State.Lints a ->
    let v = Hw.Plan.lanes_ints inst slot in
    for l = 0 to act - 1 do
      if Hw.Lanes.test mask l then a.(l) <- v.(l)
    done
  | State.Lfile _ -> lane_err "lane commit: %s is a register file" dst);
  cell.State.lc_dirty <- cell.State.lc_dirty lor mask;
  Hw.Lanes.popcount mask

let lanes_writes_updates inst st ~mask cws =
  List.fold_left (fun acc cw -> acc + lanes_cwrite inst st ~mask cw) 0 cws

let lanes_stage_updates inst st ~mask (cs : cstage) =
  let cells = lanes_writes_updates inst st ~mask cs.cs_writes in
  List.fold_left (fun acc s -> acc + lanes_shift inst st ~mask s) cells
    cs.cs_shifts

let pp_update ppf = function
  | Set_scalar (n, v) -> Format.fprintf ppf "%s := %a" n Hw.Bitvec.pp v
  | Write_file (f, a, d) ->
    Format.fprintf ppf "%s[%a] := %a" f Hw.Bitvec.pp a Hw.Bitvec.pp d
