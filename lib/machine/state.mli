(** Mutable register state of a machine, shared by the sequential and
    pipelined simulators. *)

type t

val create : Spec.t -> t
(** All registers at their initial values ({!Spec.initial_value}). *)

val reset : ?init:(string * Value.t) list -> Spec.t -> t -> unit
(** Return the state to [create m] semantics without reallocating
    cells: every spec register is restored to its initial value, with
    entries of [init] (deep-copied) taking precedence over the spec's
    own [init] list, and registers the spec does not know are removed.
    Because cells are reset {e in place}, plan bindings made with
    {!bind_plan} remain valid across resets — this is what lets one
    compiled session serve many programs (see
    {!Pipeline.Pipesem.run_session}).
    @raise Invalid_argument if an [init] name is not a spec register. *)

val get : t -> string -> Value.t
(** @raise Invalid_argument for unknown registers. *)

val set : t -> string -> Value.t -> unit

val get_scalar : t -> string -> Hw.Bitvec.t

val set_scalar : t -> string -> Hw.Bitvec.t -> unit

val read_file : t -> string -> Hw.Bitvec.t -> Hw.Bitvec.t

val write_file : t -> string -> addr:Hw.Bitvec.t -> data:Hw.Bitvec.t -> unit

val eval_env : t -> Hw.Eval.env
(** Environment reading registers by name (scalars as inputs, files
    through [lookup_file]).  Compatibility shim for the tree-walking
    {!Hw.Eval.eval}; the simulators bind plans instead
    ({!bind_plan}). *)

(** {1 Plan binding} *)

type bound
(** A plan instance wired to this state: every scalar plan input is
    paired with its register cell, every plan file reads the live
    register file. *)

val bind_plan : ?extern:(string -> bool) -> t -> Hw.Plan.t -> bound
(** Resolve every plan input against the state's registers.  Names
    satisfying [extern] (default: none) are left for the caller to
    set each cycle (the simulator's ["$full_k"]/["$ext_k"] free
    inputs).  @raise Hw.Eval.Eval_error for names that are neither
    registers nor external, or that have the wrong shape
    (file vs scalar). *)

val bound_instance : bound -> Hw.Plan.instance

val load : bound -> unit
(** Refresh every bound input slot from the current register values
    (call once per evaluation, before {!Hw.Plan.run}). *)

val snapshot : t -> (string * Value.t) list
(** Deep copy of all registers, for later comparison. *)

val snapshot_visible : Spec.t -> t -> (string * Value.t) list
(** Deep copy of the programmer-visible registers only. *)

val snapshot_visible_reusing :
  prev:(string * Value.t) list -> Spec.t -> t -> (string * Value.t) list
(** {!snapshot_visible}, recycling the storage of [prev] — a snapshot
    of the same machine from an earlier run whose ownership transfers
    to the result.  Register files are blitted into [prev]'s arrays
    instead of freshly allocated, keeping session replays off the GC;
    sessions consequently invalidate their previous trace on every
    run. *)

val restore : t -> (string * Value.t) list -> unit

val equal_on : (string * Value.t) list -> (string * Value.t) list -> bool
(** Pointwise equality of two snapshots over their common names (both
    snapshots must have the same name set; extra names are an error). *)

val diff : (string * Value.t) list -> (string * Value.t) list -> string list
(** Names whose values differ between two same-shaped snapshots. *)
