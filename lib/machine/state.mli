(** Mutable register state of a machine, shared by the sequential and
    pipelined simulators. *)

type t

val create : Spec.t -> t
(** All registers at their initial values ({!Spec.initial_value}). *)

val reset : ?init:(string * Value.t) list -> Spec.t -> t -> unit
(** Return the state to [create m] semantics without reallocating
    cells: every spec register is restored to its initial value, with
    entries of [init] (deep-copied) taking precedence over the spec's
    own [init] list, and registers the spec does not know are removed.
    Because cells are reset {e in place}, plan bindings made with
    {!bind_plan} remain valid across resets — this is what lets one
    compiled session serve many programs (see
    {!Pipeline.Pipesem.run_session}).
    @raise Invalid_argument if an [init] name is not a spec register. *)

val get : t -> string -> Value.t
(** @raise Invalid_argument for unknown registers. *)

val set : t -> string -> Value.t -> unit

val get_scalar : t -> string -> Hw.Bitvec.t

val set_scalar : t -> string -> Hw.Bitvec.t -> unit

val read_file : t -> string -> Hw.Bitvec.t -> Hw.Bitvec.t

val write_file : t -> string -> addr:Hw.Bitvec.t -> data:Hw.Bitvec.t -> unit

val eval_env : t -> Hw.Eval.env
(** Environment reading registers by name (scalars as inputs, files
    through [lookup_file]).  Compatibility shim for the tree-walking
    {!Hw.Eval.eval}; the simulators bind plans instead
    ({!bind_plan}). *)

(** {1 Plan binding} *)

type bound
(** A plan instance wired to this state: every scalar plan input is
    paired with its register cell, every plan file reads the live
    register file. *)

val bind_plan : ?extern:(string -> bool) -> t -> Hw.Plan.t -> bound
(** Resolve every plan input against the state's registers.  Names
    satisfying [extern] (default: none) are left for the caller to
    set each cycle (the simulator's ["$full_k"]/["$ext_k"] free
    inputs).  @raise Hw.Eval.Eval_error for names that are neither
    registers nor external, or that have the wrong shape
    (file vs scalar). *)

val bound_instance : bound -> Hw.Plan.instance

val load : bound -> unit
(** Refresh every bound input slot from the current register values
    (call once per evaluation, before {!Hw.Plan.run}). *)

val snapshot : t -> (string * Value.t) list
(** Deep copy of all registers, for later comparison. *)

val snapshot_visible : Spec.t -> t -> (string * Value.t) list
(** Deep copy of the programmer-visible registers only. *)

val snapshot_visible_reusing :
  prev:(string * Value.t) list -> Spec.t -> t -> (string * Value.t) list
(** {!snapshot_visible}, recycling the storage of [prev] — a snapshot
    of the same machine from an earlier run whose ownership transfers
    to the result.  Register files are blitted into [prev]'s arrays
    instead of freshly allocated, keeping session replays off the GC;
    sessions consequently invalidate their previous trace on every
    run. *)

val restore : t -> (string * Value.t) list -> unit

val equal_on : (string * Value.t) list -> (string * Value.t) list -> bool
(** Pointwise equality of two snapshots over their common names (both
    snapshots must have the same name set; extra names are an error). *)

val diff : (string * Value.t) list -> (string * Value.t) list -> string list
(** Names whose values differ between two same-shaped snapshots. *)

(** {1 Structure-of-arrays lane state}

    The lane mirror of {!t}: one record per register carrying every
    lane's value side by side — a packed word for width-1 scalars
    (bit [l] = lane [l]), a raw int per lane for wider scalars, an
    int-array per lane for register files.  The representation is
    exposed so the lane engines (commit, sequential and pipelined
    loops, the consistency checker) can sweep the arrays directly.

    Error contract: any shape or width problem raises immediately
    ([Invalid_argument] or {!Hw.Eval.Eval_error}).  Lane drivers catch
    at the pack level, discard their {!Obs.Counters.ledger}, and
    replay every lane through the scalar path — so behaviour and WORK
    counters match the scalar run exactly even for malformed inputs.

    A lane state is single-domain mutable state, like {!t}. *)

type lword = { mutable word : int }

type lane_value =
  | Lbool of lword  (** packed word: bit [l] is lane [l]'s bit *)
  | Lints of int array  (** lane-indexed raw values *)
  | Lfile of int array array
      (** lane-indexed contents; an individual lane's row may be
          replaced by {!reset_lanes} (length change), the outer array
          never is — plan bindings capture the outer array. *)

type lane_cell = {
  lc_width : int;
  lc_value : lane_value;
  mutable lc_dirty : int;
      (** lane mask of changes since the last {!snapshot_visible_lanes};
          lets snapshots alias unchanged storage instead of copying *)
  lc_srcs : Hw.Bitvec.t array option array;
      (** file cells only (else [[||]]): per lane, the physical image
          array last applied by {!reset_lanes} while the row is
          untouched since — lets a reset from the same shared image
          skip the row without reading it *)
}

type lanes

val create_lanes : ?capacity:int -> Spec.t -> lanes
(** One lane cell per spec register, all zero.  [capacity] defaults to
    {!Hw.Lanes.max_lanes}. *)

val lanes_spec : lanes -> Spec.t
val lanes_capacity : lanes -> int

val lanes_active : lanes -> int
(** Current lane count — set by the latest {!reset_lanes}. *)

val lanes_cell : lanes -> string -> lane_cell
(** @raise Invalid_argument for unknown registers. *)

val reset_lanes :
  ledger:Obs.Counters.ledger -> inits:(string * Value.t) list array ->
  lanes -> unit
(** The lane mirror of {!reset}: lane [l] is initialised from
    [inits.(l)], with the spec's own [init] list and then zero as
    fallback.  The active lane count becomes [Array.length inits].
    Stages one [State_resets] per lane into [ledger].
    @raise Invalid_argument on unknown init names (scalar message) or
    width/kind mismatches. *)

type lanes_bound
(** A {!Hw.Plan.lanes} instance wired to this lane state. *)

val bind_lanes : ?extern:(string -> bool) -> lanes -> Hw.Plan.lanes -> lanes_bound
(** Resolve plan inputs and files against the lane cells, checking
    widths once here (the lane engine has no per-access width checks).
    Same name/shape error contract as {!bind_plan}. *)

val lanes_bound_instance : lanes_bound -> Hw.Plan.lanes

val load_lanes : lanes_bound -> unit
(** Refresh every bound input slot from the lane cells (packed words
    stored, wide rows blitted), before {!Hw.Plan.run_lanes}. *)

val snapshot_visible_lanes :
  ?prev:(string * lane_value) list -> ledger:Obs.Counters.ledger ->
  lanes -> (string * lane_value) list
(** Snapshot of the visible registers across all active lanes, sorted
    by name.  Stages the scalar-equivalent [Snapshot_words] (one word
    per scalar register per lane, the row length per file) into
    [ledger] — charged identically whether storage is copied or
    aliased, so lane and scalar WORK rows stay bit-identical.

    [?prev] is the {e immediately preceding} snapshot of the same run;
    it is never mutated.  Cells untouched since it was taken
    ([lc_dirty] clear) alias its storage outright; a dirty register
    file copies only the dirty lanes' rows and aliases the rest.
    Snapshots are immutable once taken — treat the returned values as
    shared. *)
