type t =
  | Scalar of Hw.Bitvec.t
  | File of Hw.Bitvec.t array

let scalar v = Scalar v
let zero_scalar ~width = Scalar (Hw.Bitvec.zero width)

let zero_file ~width ~addr_bits =
  File (Array.make (1 lsl addr_bits) (Hw.Bitvec.zero width))

let file_of_list ~width ~addr_bits entries =
  let n = 1 lsl addr_bits in
  if List.length entries > n then
    invalid_arg "Value.file_of_list: too many entries";
  List.iter
    (fun e ->
      if Hw.Bitvec.width e <> width then
        invalid_arg "Value.file_of_list: width mismatch")
    entries;
  let arr = Array.make n (Hw.Bitvec.zero width) in
  List.iteri (fun i e -> arr.(i) <- e) entries;
  File arr

let copy = function
  | Scalar _ as v -> v
  | File arr -> File (Array.copy arr)

(* The per-entry physical shortcut matters: batched runs seed both
   machines from one shared image ([copy] preserves entry sharing), so
   comparing two register files mostly compares identical pointers. *)
let equal a b =
  a == b
  ||
  match (a, b) with
  | Scalar x, Scalar y -> Hw.Bitvec.equal x y
  | File x, File y ->
    x == y
    || Array.length x = Array.length y
       && (let n = Array.length x in
           (* [unsafe_get]: i < n = length x = length y.  This scan is
              the inner loop of every visible-state comparison. *)
           let rec go i =
             i >= n
             || (let a = Array.unsafe_get x i and b = Array.unsafe_get y i in
                 (a == b || Hw.Bitvec.equal a b) && go (i + 1))
           in
           go 0)
  | Scalar _, File _ | File _, Scalar _ -> false

let read_scalar = function
  | Scalar v -> v
  | File _ -> invalid_arg "Value.read_scalar: register file"

let read_file t addr =
  match t with
  | Scalar _ -> invalid_arg "Value.read_file: scalar"
  | File arr -> arr.(Hw.Bitvec.to_int addr land (Array.length arr - 1))

let write_file t addr data =
  match t with
  | Scalar _ -> invalid_arg "Value.write_file: scalar"
  | File arr -> arr.(Hw.Bitvec.to_int addr land (Array.length arr - 1)) <- data

let pp ppf = function
  | Scalar v -> Hw.Bitvec.pp ppf v
  | File arr ->
    Format.fprintf ppf "[|";
    Array.iteri
      (fun i v ->
        if i > 0 then Format.fprintf ppf "; ";
        Hw.Bitvec.pp ppf v)
      arr;
    Format.fprintf ppf "|]"
