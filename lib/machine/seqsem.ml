type trace = {
  spec_before : (string * Value.t) list array;
  instructions : int;
  halted : bool;
}

let step_stage m state ~stage =
  let env = State.eval_env state in
  let updates = Commit.stage_updates m ~stage ~env state in
  Commit.apply state updates

let run_instruction (m : Spec.t) state =
  for k = 0 to m.n_stages - 1 do
    step_stage m state ~stage:k
  done

(* Compiled machine: one plan per stage (a stage reads the state its
   predecessor just committed, so each stage re-loads and re-runs its
   own tape). *)
type compiled = {
  cm_spec : Spec.t;
  cm_stages : (Hw.Plan.t * Commit.cstage) array;
  cm_lanes_stages : (Hw.Plan.t * Commit.cstage) array Lazy.t;
      (* the lanes mirror's engine-specific tapes: fold-only (LUT
         synthesis would replace packed boolean word ops with per-lane
         table walks), work-accounted against [cm_stages] so lane and
         scalar runs stay counter-identical *)
}

let compile ?(optimize = Hw.Plan.optimize_default ()) (m : Spec.t) =
  let build_stage ~lut k =
    let b = Hw.Plan.create ~auto:true () in
    let cs = Commit.compile_stage m b ~stage:k in
    let plan = Hw.Plan.build b in
    if optimize then begin
      let plan, remap = Hw.Plan.optimize_remap ~count:lut ~lut plan in
      (plan, Commit.remap_cstage (fun s -> remap.(s)) cs)
    end
    else (plan, cs)
  in
  let stages = Array.init m.n_stages (build_stage ~lut:true) in
  {
    cm_spec = m;
    cm_stages = stages;
    cm_lanes_stages =
      lazy
        (if not optimize then stages
         else
           Array.init m.n_stages (fun k ->
               let plan, cs = build_stage ~lut:false k in
               (Hw.Plan.with_work_equiv ~equiv:(fst stages.(k)) plan, cs)));
  }

let spec cm = cm.cm_spec

(* A session: one persistent state with the per-stage plans bound to
   it once.  [run_session] resets the state (cells mutate in place, so
   the bindings stay wired) and replays the machine on new initial
   contents. *)
type session = {
  ss_cm : compiled;
  ss_state : State.t;
  ss_stages : (State.bound * Commit.cstage) array;
  mutable ss_arena : (string * Value.t) list list;
      (* last run's trace snapshots, recycled by the next run — this
         is what invalidates a session's previous trace *)
}

let session cm =
  Obs.Counters.bump Obs.Counters.Sessions;
  let state = State.create cm.cm_spec in
  let stages =
    Array.map
      (fun (plan, cs) -> (State.bind_plan state plan, cs))
      cm.cm_stages
  in
  { ss_cm = cm; ss_state = state; ss_stages = stages; ss_arena = [] }

let run_session ?(halt = fun _ -> false) ?init ~max_instructions s =
  let m = s.ss_cm.cm_spec in
  let state = s.ss_state in
  let stages = s.ss_stages in
  State.reset ?init m state;
  let step k =
    let bound, cs = stages.(k) in
    State.load bound;
    Hw.Plan.run (State.bound_instance bound);
    Commit.apply state
      (Commit.stage_updates_compiled (State.bound_instance bound) cs)
  in
  let arena = ref s.ss_arena in
  s.ss_arena <- [];
  let snapshot () =
    let prev =
      match !arena with
      | [] -> []
      | p :: tl ->
        arena := tl;
        p
    in
    State.snapshot_visible_reusing ~prev m state
  in
  let snaps = ref [] in
  let count = ref 0 in
  let halted = ref false in
  (try
     while !count < max_instructions do
       if halt state then begin
         halted := true;
         raise Exit
       end;
       snaps := snapshot () :: !snaps;
       for k = 0 to m.n_stages - 1 do
         step k
       done;
       incr count
     done
   with Exit -> ());
  snaps := snapshot () :: !snaps;
  Obs.Counters.add Obs.Counters.Seq_instructions !count;
  s.ss_arena <- !snaps;
  ( {
      spec_before = Array.of_list (List.rev !snaps);
      instructions = !count;
      halted = !halted;
    },
    state )

let run_state_compiled ?halt ~max_instructions cm =
  run_session ?halt ~max_instructions (session cm)

(* Per-domain session cache: workers in an {!Exec.Pool} reuse one
   session per compiled machine instead of binding plans per task.
   Keyed by physical equality on [compiled]; bounded so abandoned
   machines are eventually collectable. *)
let local_sessions : (compiled * session) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let local_session cm =
  let cache = Domain.DLS.get local_sessions in
  match List.assq_opt cm !cache with
  | Some s -> s
  | None ->
    let s = session cm in
    cache := take 8 ((cm, s) :: !cache);
    s

(* ---- lane path: the reference model for up to 62 programs at once ---- *)

(* The lane mirror of [session]/[run_session]: one SoA state with each
   stage's plan bound as a lane instance.  No halt support — the lane
   drivers (batched BMC) always run a fixed instruction count.  All
   work counts are staged into the caller's ledger so an aborted pack
   leaves the totals untouched. *)
type lanes_session = {
  lss_cm : compiled;
  lss_state : State.lanes;
  lss_stages : (State.lanes_bound * Commit.cstage) array;
  mutable lss_prev : (int * (string * State.lane_value) list) option;
      (* last run's final snapshot with its lane count: seeds the next
         run's first snapshot so untouched registers alias instead of
         copying.  Only valid for a run with the same lane count — a
         different [act] may have clobbered packed-word garbage bits or
         truncated file spines beyond its own lanes. *)
}

type lane_trace = {
  lt_before : (string * State.lane_value) list array;
  lt_instructions : int;
}

let lanes_session ?capacity cm =
  Obs.Counters.bump Obs.Counters.Sessions;
  let state = State.create_lanes ?capacity cm.cm_spec in
  let stages =
    Array.map
      (fun (plan, cs) -> (State.bind_lanes state (Hw.Plan.lanes ?capacity plan), cs))
      (Lazy.force cm.cm_lanes_stages)
  in
  { lss_cm = cm; lss_state = state; lss_stages = stages; lss_prev = None }

let lanes_state s = s.lss_state

let run_lanes_session ~ledger ~inits ~max_instructions s =
  let m = s.lss_cm.cm_spec in
  let state = s.lss_state in
  let act = Array.length inits in
  (* Take the seed before clearing: if this run dies mid-pack, later
     snapshots will have cleared dirty bits the stale seed knows
     nothing about, so it must not survive an abort. *)
  let seed =
    match s.lss_prev with Some (a, p) when a = act -> Some p | _ -> None
  in
  s.lss_prev <- None;
  State.reset_lanes ~ledger ~inits state;
  let mask = Hw.Lanes.mask_of_count act in
  Array.iter
    (fun (lb, _) ->
      Hw.Plan.lanes_set_active (State.lanes_bound_instance lb) act)
    s.lss_stages;
  let step k =
    let lb, cs = s.lss_stages.(k) in
    State.load_lanes lb;
    let inst = State.lanes_bound_instance lb in
    Hw.Plan.run_lanes inst;
    Obs.Counters.ledger_add ledger Obs.Counters.Plan_runs act;
    Obs.Counters.ledger_add ledger Obs.Counters.Plan_ops
      (act * Hw.Plan.n_instrs (Hw.Plan.work_equiv (Hw.Plan.lanes_plan inst)));
    Obs.Counters.ledger_add ledger Obs.Counters.Cells_written
      (Commit.lanes_stage_updates inst state ~mask cs)
  in
  (* Chain each snapshot off the previous one: registers untouched
     since the last snapshot alias its storage (copy-on-write in
     [State.snapshot_visible_lanes]), so a mostly-idle visible file
     (instruction memory, data memory) costs a pointer per step, not a
     deep copy. *)
  let snapshot prev = State.snapshot_visible_lanes ?prev ~ledger state in
  let snaps = ref [] in
  let prev = ref seed in
  for _ = 1 to max_instructions do
    let snap = snapshot !prev in
    prev := Some snap;
    snaps := snap :: !snaps;
    for k = 0 to m.n_stages - 1 do
      step k
    done
  done;
  let final = snapshot !prev in
  snaps := final :: !snaps;
  s.lss_prev <- Some (act, final);
  Obs.Counters.ledger_add ledger Obs.Counters.Seq_instructions
    (act * max_instructions);
  {
    lt_before = Array.of_list (List.rev !snaps);
    lt_instructions = max_instructions;
  }

let local_lanes_sessions : (compiled * lanes_session) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let local_lanes_session cm =
  let cache = Domain.DLS.get local_lanes_sessions in
  match List.assq_opt cm !cache with
  | Some s -> s
  | None ->
    let s = lanes_session cm in
    cache := take 8 ((cm, s) :: !cache);
    s

let run_state ?halt ~max_instructions (m : Spec.t) =
  run_state_compiled ?halt ~max_instructions (compile m)

let run ?halt ~max_instructions m =
  fst (run_state ?halt ~max_instructions m)

let ue_table ~n_stages ~cycles =
  let columns = List.init n_stages (fun k -> Printf.sprintf "ue_%d" k) in
  let wave = Hw.Wave.create ~columns in
  for t = 0 to cycles - 1 do
    Hw.Wave.record_bits wave
      (List.mapi (fun k c -> (c, t mod n_stages = k)) columns)
  done;
  wave
