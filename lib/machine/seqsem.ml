type trace = {
  spec_before : (string * Value.t) list array;
  instructions : int;
  halted : bool;
}

let step_stage m state ~stage =
  let env = State.eval_env state in
  let updates = Commit.stage_updates m ~stage ~env state in
  Commit.apply state updates

let run_instruction (m : Spec.t) state =
  for k = 0 to m.n_stages - 1 do
    step_stage m state ~stage:k
  done

(* Compiled machine: one plan per stage (a stage reads the state its
   predecessor just committed, so each stage re-loads and re-runs its
   own tape). *)
type compiled = {
  cm_spec : Spec.t;
  cm_stages : (Hw.Plan.t * Commit.cstage) array;
}

let compile (m : Spec.t) =
  {
    cm_spec = m;
    cm_stages =
      Array.init m.n_stages (fun k ->
          let b = Hw.Plan.create ~auto:true () in
          let cs = Commit.compile_stage m b ~stage:k in
          (Hw.Plan.build b, cs));
  }

let spec cm = cm.cm_spec

(* A session: one persistent state with the per-stage plans bound to
   it once.  [run_session] resets the state (cells mutate in place, so
   the bindings stay wired) and replays the machine on new initial
   contents. *)
type session = {
  ss_cm : compiled;
  ss_state : State.t;
  ss_stages : (State.bound * Commit.cstage) array;
  mutable ss_arena : (string * Value.t) list list;
      (* last run's trace snapshots, recycled by the next run — this
         is what invalidates a session's previous trace *)
}

let session cm =
  Obs.Counters.bump Obs.Counters.Sessions;
  let state = State.create cm.cm_spec in
  let stages =
    Array.map
      (fun (plan, cs) -> (State.bind_plan state plan, cs))
      cm.cm_stages
  in
  { ss_cm = cm; ss_state = state; ss_stages = stages; ss_arena = [] }

let run_session ?(halt = fun _ -> false) ?init ~max_instructions s =
  let m = s.ss_cm.cm_spec in
  let state = s.ss_state in
  let stages = s.ss_stages in
  State.reset ?init m state;
  let step k =
    let bound, cs = stages.(k) in
    State.load bound;
    Hw.Plan.run (State.bound_instance bound);
    Commit.apply state
      (Commit.stage_updates_compiled (State.bound_instance bound) cs)
  in
  let arena = ref s.ss_arena in
  s.ss_arena <- [];
  let snapshot () =
    let prev =
      match !arena with
      | [] -> []
      | p :: tl ->
        arena := tl;
        p
    in
    State.snapshot_visible_reusing ~prev m state
  in
  let snaps = ref [] in
  let count = ref 0 in
  let halted = ref false in
  (try
     while !count < max_instructions do
       if halt state then begin
         halted := true;
         raise Exit
       end;
       snaps := snapshot () :: !snaps;
       for k = 0 to m.n_stages - 1 do
         step k
       done;
       incr count
     done
   with Exit -> ());
  snaps := snapshot () :: !snaps;
  Obs.Counters.add Obs.Counters.Seq_instructions !count;
  s.ss_arena <- !snaps;
  ( {
      spec_before = Array.of_list (List.rev !snaps);
      instructions = !count;
      halted = !halted;
    },
    state )

let run_state_compiled ?halt ~max_instructions cm =
  run_session ?halt ~max_instructions (session cm)

(* Per-domain session cache: workers in an {!Exec.Pool} reuse one
   session per compiled machine instead of binding plans per task.
   Keyed by physical equality on [compiled]; bounded so abandoned
   machines are eventually collectable. *)
let local_sessions : (compiled * session) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let local_session cm =
  let cache = Domain.DLS.get local_sessions in
  match List.assq_opt cm !cache with
  | Some s -> s
  | None ->
    let s = session cm in
    cache := take 8 ((cm, s) :: !cache);
    s

let run_state ?halt ~max_instructions (m : Spec.t) =
  run_state_compiled ?halt ~max_instructions (compile m)

let run ?halt ~max_instructions m =
  fst (run_state ?halt ~max_instructions m)

let ue_table ~n_stages ~cycles =
  let columns = List.init n_stages (fun k -> Printf.sprintf "ue_%d" k) in
  let wave = Hw.Wave.create ~columns in
  for t = 0 to cycles - 1 do
    Hw.Wave.record_bits wave
      (List.mapi (fun k c -> (c, t mod n_stages = k)) columns)
  done;
  wave
