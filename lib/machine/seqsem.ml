type trace = {
  spec_before : (string * Value.t) list array;
  instructions : int;
  halted : bool;
}

let step_stage m state ~stage =
  let env = State.eval_env state in
  let updates = Commit.stage_updates m ~stage ~env state in
  Commit.apply state updates

let run_instruction (m : Spec.t) state =
  for k = 0 to m.n_stages - 1 do
    step_stage m state ~stage:k
  done

(* Compiled machine: one plan per stage (a stage reads the state its
   predecessor just committed, so each stage re-loads and re-runs its
   own tape). *)
type compiled = {
  cm_spec : Spec.t;
  cm_stages : (Hw.Plan.t * Commit.cstage) array;
}

let compile (m : Spec.t) =
  {
    cm_spec = m;
    cm_stages =
      Array.init m.n_stages (fun k ->
          let b = Hw.Plan.create ~auto:true () in
          let cs = Commit.compile_stage m b ~stage:k in
          (Hw.Plan.build b, cs));
  }

let spec cm = cm.cm_spec

let run_state_compiled ?(halt = fun _ -> false) ~max_instructions cm =
  let m = cm.cm_spec in
  let state = State.create m in
  let stages =
    Array.map
      (fun (plan, cs) -> (State.bind_plan state plan, cs))
      cm.cm_stages
  in
  let step k =
    let bound, cs = stages.(k) in
    State.load bound;
    Hw.Plan.run (State.bound_instance bound);
    Commit.apply state
      (Commit.stage_updates_compiled (State.bound_instance bound) cs)
  in
  let snaps = ref [] in
  let count = ref 0 in
  let halted = ref false in
  (try
     while !count < max_instructions do
       if halt state then begin
         halted := true;
         raise Exit
       end;
       snaps := State.snapshot_visible m state :: !snaps;
       for k = 0 to m.n_stages - 1 do
         step k
       done;
       incr count
     done
   with Exit -> ());
  snaps := State.snapshot_visible m state :: !snaps;
  ( {
      spec_before = Array.of_list (List.rev !snaps);
      instructions = !count;
      halted = !halted;
    },
    state )

let run_state ?halt ~max_instructions (m : Spec.t) =
  run_state_compiled ?halt ~max_instructions (compile m)

let run ?halt ~max_instructions m =
  fst (run_state ?halt ~max_instructions m)

let ue_table ~n_stages ~cycles =
  let columns = List.init n_stages (fun k -> Printf.sprintf "ue_%d" k) in
  let wave = Hw.Wave.create ~columns in
  for t = 0 to cycles - 1 do
    Hw.Wave.record_bits wave
      (List.mapi (fun k c -> (c, t mod n_stages = k)) columns)
  done;
  wave
