(** Sequential reference semantics (paper §2, table 1).

    The prepared sequential machine executes one instruction at a time
    by enabling the update-enable signals [ue_0, ue_1, ..., ue_{n-1}]
    round robin: stage [k] of instruction [I_i] runs in cycle
    [i*n + k].  This machine "behaves as desired" by assumption and
    serves as the reference for the correctness proof: the trace of
    programmer-visible states [R_S^i] (the correct value of [R] right
    before the execution of instruction [I_i]) is recorded here and
    consumed by the data-consistency checker. *)

type trace = {
  spec_before : (string * Value.t) list array;
      (** [spec_before.(i)] is the visible state [R_S^i]: right before
          instruction [I_i].  Length is [instructions + 1]; the last
          entry is the final visible state. *)
  instructions : int;  (** number of instructions executed *)
  halted : bool;       (** stopped because the halt predicate held *)
}

val step_stage : Spec.t -> State.t -> stage:int -> unit
(** Run one stage of the current instruction: evaluate its data paths
    against the current state and commit (one [ue_k] cycle).
    Closure-path compatibility shim (tree-walking evaluation); the
    batch runners below compile the machine first. *)

val run_instruction : Spec.t -> State.t -> unit
(** One full round-robin sweep: stages [0 .. n-1] (closure path). *)

type compiled
(** The machine's stage writes compiled to evaluation plans (one tape
    per stage), reusable across runs. *)

val compile : ?optimize:bool -> Spec.t -> compiled
(** [optimize] (default {!Hw.Plan.optimize_default}) runs
    {!Hw.Plan.optimize} on each stage tape. *)

val spec : compiled -> Spec.t

val run_state_compiled :
  ?halt:(State.t -> bool) ->
  max_instructions:int ->
  compiled ->
  trace * State.t
(** Execute a precompiled machine from its initial state. *)

(** {1 Sessions (compile once, run many programs)}

    A session pairs a compiled machine with one persistent
    {!State.t} whose cells the per-stage plans are bound to.
    {!run_session} resets the state in place (bindings survive —
    see {!State.reset}), applies per-program initial-value
    overrides, and replays the machine: many programs, one
    compilation, no per-run plan binding.  A session is
    single-domain mutable state (see {!Hw.Plan}); {!local_session}
    maintains one per domain. *)

type session

val session : compiled -> session
(** A fresh session over the compiled machine. *)

val local_session : compiled -> session
(** The calling domain's cached session for this compiled machine
    (physical equality), created on first use.  Lets {!Exec.Pool}
    workers bind plans once per domain rather than once per task. *)

val run_session :
  ?halt:(State.t -> bool) ->
  ?init:(string * Value.t) list ->
  max_instructions:int ->
  session ->
  trace * State.t
(** Reset the session state — [init] entries override the spec's
    initial values, see {!State.reset} — and execute.  The returned
    state {e and trace} are the session's own (live until the next
    [run_session] on this session, which recycles the trace's
    snapshot storage): copy what must outlive the next run. *)

val run :
  ?halt:(State.t -> bool) ->
  max_instructions:int ->
  Spec.t ->
  trace
(** Execute from the initial state ({!compile} +
    {!run_state_compiled}).  [halt] is tested before each instruction
    (default: never). *)

val run_state :
  ?halt:(State.t -> bool) ->
  max_instructions:int ->
  Spec.t ->
  trace * State.t
(** Like {!run} but also returning the final machine state. *)

(** {1 Lane sessions (up to 62 programs per run)}

    The bit-parallel mirror of a session: one {!State.lanes} SoA state
    with every stage's plan bound as a {!Hw.Plan.lanes} instance.  One
    [run_lanes_session] executes the reference model for a whole lane
    pack; the trace holds SoA snapshots.  All work counts (resets,
    plan runs/ops, cells written, snapshot words, instructions) are
    staged into the caller's {!Obs.Counters.ledger} — flushed by the
    caller only if the whole lane co-simulation succeeds, keeping WORK
    totals bit-identical to per-program scalar runs. *)

type lanes_session

type lane_trace = {
  lt_before : (string * State.lane_value) list array;
      (** [lt_before.(i)] is the visible state before instruction
          [I_i], all lanes side by side; length [instructions + 1]. *)
  lt_instructions : int;
}

val lanes_session : ?capacity:int -> compiled -> lanes_session

val lanes_state : lanes_session -> State.lanes
(** The session's SoA state — for provenance probes
    ({!State.lane_cell.lc_srcs}) by lane-aware checkers. *)

val local_lanes_session : compiled -> lanes_session
(** The calling domain's cached lane session (physical equality on the
    compiled machine), capacity {!Hw.Lanes.max_lanes}. *)

val run_lanes_session :
  ledger:Obs.Counters.ledger ->
  inits:(string * Value.t) list array ->
  max_instructions:int ->
  lanes_session ->
  lane_trace
(** Reset lane [l] from [inits.(l)] and execute [max_instructions]
    instructions in every lane (no halt predicate).  The trace is the
    session's own storage, recycled by the next run.  Raises on any
    width/shape problem — callers discard the ledger and fall back to
    scalar runs. *)

val ue_table : n_stages:int -> cycles:int -> Hw.Wave.t
(** The paper's Table 1: the round-robin pattern of [ue_k] signals of
    the sequential machine in the absence of stalls (column [ue_k] is 1
    in cycle [T] iff [T mod n = k]). *)
