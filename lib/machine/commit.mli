(** Register-update semantics of one stage, shared by the sequential
    simulator and (through the transformed machine) the pipelined one.

    Implements the clock-enable convention of paper §2: when stage [k]
    updates,

    - a pipelined *instance* register ([prev_instance = Some p])
      receives [f_k]'s value if the write enable is active and the
      previous instance's current value otherwise (it always clocks);
    - any other register is clocked only when its write enable is
      active ([ce = f_k_Rwe ∧ ue_k]); register files write one entry at
      [f_k_Rwa].

    Evaluation is two-phase: all expressions of the stage are evaluated
    against the pre-update state, then all updates commit at once (a
    clock edge). *)

type update =
  | Set_scalar of string * Hw.Bitvec.t
  | Write_file of string * Hw.Bitvec.t * Hw.Bitvec.t  (** file, addr, data *)

val stage_updates :
  Spec.t -> stage:int -> env:Hw.Eval.env -> State.t -> update list
(** Evaluate stage [stage]'s writes (and instance shifts) in [env];
    [State.t] supplies the previous-instance values for pass-through.
    Raises [Hw.Eval.Eval_error] on evaluation failure.  Closure-path
    compatibility shim; the simulators use the compiled path below. *)

val writes_updates :
  Spec.t -> writes:Spec.write list -> env:Hw.Eval.env -> State.t -> update list
(** Like {!stage_updates} but for an explicit write list (used for the
    speculation rollback writes, paper §5); instance pass-through is
    not applied — only listed writes commit, under their guards.
    Closure-path compatibility shim. *)

(** {1 Compiled path}

    Stage writes compiled once into a {!Hw.Plan} builder; per cycle
    the simulator runs the plan and materializes updates from slots. *)

type cwrite
(** One compiled register write: value / guard / address / instance
    pass-through resolved to plan slots. *)

type cstage = {
  cs_writes : cwrite list;
  cs_shifts : (string * int) list;
      (** instance registers without an explicit write: destination,
          slot holding the previous instance's value *)
}

val compile_stage : Spec.t -> Hw.Plan.builder -> stage:int -> cstage
(** Compile stage [stage]'s writes and shifts into the builder
    (subexpressions are shared with whatever else the builder holds). *)

val compile_writes : Spec.t -> Hw.Plan.builder -> Spec.write list -> cwrite list
(** Compile an explicit write list (rollback writes): no instance
    pass-through, mirroring {!writes_updates}. *)

val remap_cwrite : (int -> int) -> cwrite -> cwrite
(** Translate every captured plan slot (value, guard, address,
    pass-through) through a slot map — the
    {!Hw.Plan.optimize_remap} translation after tape compaction. *)

val remap_cstage : (int -> int) -> cstage -> cstage
(** {!remap_cwrite} over a whole stage, shifts included. *)

val cwrite_slots : cwrite -> int list -> int list
(** Cons every plan slot the write reads (value, guard, address,
    pass-through) onto an accumulator — the segmentation roots handed
    to {!Hw.Plan.segment}. *)

val cstage_slots : cstage -> int list
(** Every plan slot a stage's commit reads: {!cwrite_slots} over its
    writes plus the shift sources. *)

val stage_updates_compiled : Hw.Plan.instance -> cstage -> update list
(** Read the updates of a stage from an evaluated plan instance.
    Equivalent to {!stage_updates} against the same pre-edge values. *)

val writes_updates_compiled : Hw.Plan.instance -> cwrite list -> update list

val apply : State.t -> update list -> unit

(** {1 Lane path}

    The lane mirror of [stage_updates_compiled] + [apply], fused:
    values flow straight from lane slots into lane cells under a lane
    mask, with no update list.  Both functions return the scalar
    [Cells_written] equivalent of what they committed (one per enabled
    plain write per lane, one per pass-through/shift per masked lane)
    for the caller's {!Obs.Counters.ledger} — nothing is counted
    directly.  Width or kind mismatches raise [Invalid_argument]; lane
    drivers respond by replaying the pack through the scalar path. *)

val lanes_stage_updates :
  Hw.Plan.lanes -> State.lanes -> mask:int -> cstage -> int
(** Commit one stage's writes and shifts for every lane in [mask],
    reading an evaluated lane instance. *)

val lanes_writes_updates :
  Hw.Plan.lanes -> State.lanes -> mask:int -> cwrite list -> int
(** Commit an explicit write list (rollback writes) for every lane in
    [mask]. *)

val pp_update : Format.formatter -> update -> unit
