(** Lane bookkeeping for bit-parallel batched evaluation.

    A pack of up to {!max_lanes} independent co-simulations rides in
    the bit-lanes of a native [int]: bit [l] of a packed word is the
    value of a width-1 signal in lane [l].  Larger batches are split
    into consecutive {!max_lanes}-sized chunks by the callers.

    Invariant: bits [0 .. active-1] of a packed word are meaningful
    and higher bits are unspecified — consumers mask with
    {!mask_of_count}, producers may leave garbage above the active
    count. *)

val max_lanes : int
(** 62: the widest lane pack a native 63-bit int can carry (matching
    {!Bitvec.max_width}). *)

val mask_of_count : int -> int
(** [mask_of_count n] is all-ones over the low [n] bits (non-negative;
    [mask_of_count max_lanes = max_int]).  Raises [Invalid_argument]
    outside [0 .. max_lanes]. *)

val test : int -> int -> bool
(** [test w l] is bit [l] of [w]. *)

val set : int -> int -> int
(** [set w l] is [w] with bit [l] set. *)

val clear : int -> int -> int
(** [clear w l] is [w] with bit [l] cleared. *)

val popcount : int -> int
(** Number of set bits. *)

val majority : mask:int -> int -> bool
(** The majority bit value of [w] among the lanes selected by [mask];
    ties break towards [false]. *)

val minority : mask:int -> int -> int
(** The lanes in [mask] whose bit in [w] differs from the
    {!majority} bit — the divergent minority of a control word. *)

val iter : mask:int -> (int -> unit) -> unit
(** Apply to each set lane index of [mask], lowest first. *)

val fold : mask:int -> ('a -> int -> 'a) -> 'a -> 'a
(** Fold over the set lane indices of [mask], lowest first. *)
