(** Compiled evaluation plans (compile once, evaluate many).

    The cycle simulators used to re-traverse every synthesized
    expression each cycle through the tree-walking interpreter
    {!Eval.eval}, resolving registers and signals through string-keyed
    closures.  A {e plan} compiles a set of expressions once into a
    topologically ordered instruction tape over integer {e slots}:

    - common subexpressions are hash-consed and evaluated once per
      {!run};
    - widths are checked at compile time ({!Compile_error}), not per
      evaluation;
    - register and signal names are resolved to slot indices up front;
    - register-file reads dispatch through a pre-bound file table.

    {2 Building}

    A {!builder} compiles expressions incrementally.  {!define} names
    the result (later expressions referring to the name via
    [Expr.Input] resolve to its slot, like the simulator's
    definition-order signal lists); {!root} compiles an anonymous
    expression.  Both return the result slot.  [Expr.Input] names that
    are neither defines nor declared inputs are added as new input
    slots when the builder was created with [~auto:true], and rejected
    with {!Compile_error} otherwise.

    {2 Running}

    An {!instance} holds the mutable slot array for one evaluation
    context.  Bind the file table ({!bind_file}), load the input slots
    ({!set}), then {!run} executes the tape; read results with {!get}.
    A plan is immutable and can back any number of instances.

    {2 Instance reuse}

    Instances are designed to be reused across evaluation contexts
    rather than reallocated: {!reset} returns an instance to its
    freshly created state (constants reloaded, every other slot
    cleared, every file unbound), after which it may serve an
    unrelated program or data image over the same plan.  Rebinding is
    also supported without a reset: {!bind_file} {e replaces} the
    current reader for a file, and {!run} recomputes every non-input
    slot from scratch, so a caller that rebinds all files and reloads
    all input slots between runs observes no state from the previous
    evaluation.  {!reset} is the belt-and-braces form for handing an
    instance to a new context: it also clears slots left over from an
    aborted or cancelled run and downgrades stale file bindings back
    to {!Run_error}-raising stubs, so forgetting a rebind fails loudly
    instead of silently reading the previous context's data.

    {2 Thread safety}

    The plan/instance split is the concurrency contract for the whole
    simulation stack (see {!Exec.Pool}):

    - a built {!t} is {e immutable} — share it freely across domains;
      any number of instances may be created from and evaluated over
      the same plan concurrently;
    - a {!builder} and an {!instance} are single-domain mutable state:
      confine each to the domain that created it (one instance per
      concurrent evaluation, never shared).

    Callers running plan-backed simulations in an {!Exec.Pool} compile
    once and keep {e one reusable instance per domain} (domain-local
    storage keyed by the plan, as in {!Pipeline.Pipesem.local_session}),
    resetting or rebinding it between tasks instead of allocating a
    fresh instance inside every task. *)

exception Compile_error of string
(** Width mismatch, undeclared name, or duplicate definition. *)

exception Run_error of string
(** Unbound register file, or a width mismatch on a value entering the
    plan at run time ({!set}, or a file read returning the wrong
    width). *)

type t
(** A compiled plan: instruction tape, slot/width tables, name maps. *)

type builder

type instance
(** Mutable evaluation state over a plan's slots. *)

(** {1 Compilation} *)

val create :
  ?auto:bool ->
  ?inputs:(string * int) list ->
  ?files:(string * int) list ->
  unit ->
  builder
(** [create ~auto ~inputs ~files ()]: [inputs] declares external
    scalar inputs (name, width); [files] declares register files
    (name, data width).  [auto] (default [false]) adds undeclared
    names on demand instead of rejecting them. *)

val define : builder -> string -> Expr.t -> int
(** Compile and name a result; subsequent [Expr.Input] references to
    the name resolve to the returned slot.
    @raise Compile_error on re-definition or width errors. *)

val root : builder -> Expr.t -> int
(** Compile an anonymous expression; returns its slot. *)

val input : builder -> string -> int -> int
(** [input b name width] declares (or finds) the external input slot
    for [name].  @raise Compile_error on a width conflict. *)

val build : builder -> t
(** Freeze the tape.  The builder must not be used afterwards. *)

(** {1 Plan structure} *)

val n_slots : t -> int

val n_instrs : t -> int
(** Tape length — the per-{!run} work, after hash-consing. *)

val input_slot : t -> string -> int option
val define_slot : t -> string -> int option

val slot_of_name : t -> string -> int option
(** Defines first, then inputs: the slot a name resolves to. *)

val iter_inputs : t -> (string -> slot:int -> width:int -> unit) -> unit
val iter_files : t -> (string -> index:int -> width:int -> unit) -> unit

val slot_name : t -> int -> string option
(** Slot-to-name view for name-based callback interfaces (inverse of
    {!slot_of_name}; anonymous interior slots yield [None]). *)

(** {1 Evaluation} *)

val instance : t -> instance
(** Fresh slots (constants preloaded), no files bound. *)

val reset : instance -> unit
(** Return the instance to its freshly created state: constants are
    reloaded, every other slot is cleared, and every file binding is
    dropped (subsequent file reads raise {!Run_error} until
    {!bind_file} is called again).  Equivalent to replacing the
    instance with [instance (plan of inst)] but without allocation;
    see the instance-reuse contract above. *)

val bind_file : instance -> string -> (Bitvec.t -> Bitvec.t) -> unit
(** Bind a register-file reader.  Unknown names are ignored (the plan
    never reads them).  Readers are consulted on every [File_read]
    executed by {!run}; results are width-checked ({!Run_error}). *)

val set : instance -> int -> Bitvec.t -> unit
(** Load an input slot.  @raise Run_error on width mismatch. *)

val run : instance -> unit
(** Execute the tape: every non-input slot receives its value.
    @raise Run_error on an unbound file. *)

val get : instance -> int -> Bitvec.t
val get_bool : instance -> int -> bool

val read_name : instance -> string -> Bitvec.t option
(** Name-based lookup over defines and inputs (callback compatibility
    view). *)

val slot_width : t -> int -> int
(** Declared width of a slot. *)

(** {1 Bit-parallel lanes}

    A {!lanes} instance evaluates the same tape for up to
    {!Lanes.max_lanes} independent programs at once.  Width-1 slots
    are carried as one packed word per slot (bit [l] = lane [l]), so
    the boolean control fabric — stalls, fulls, hazard hits, squashes
    — advances every lane with single word ops; wider slots hold one
    raw (unboxed) int per lane and evaluate with flat array sweeps.

    Garbage discipline: bits and entries at index [>= lanes_active]
    are unspecified.  Callers load input slots with {!lanes_set_word}
    / {!lanes_ints} (mutate the row in place), bind register files as
    one [int array] per lane, and read results the same way.

    Like an {!instance}, a lanes instance is single-domain mutable
    state over an immutable shared plan.

    {!run_lanes} counts {e nothing} into {!Obs.Counters}: lane callers
    stage the equivalent scalar work (one [Plan_runs] / tape-length
    [Plan_ops] per lane) into an {!Obs.Counters.ledger} so the WORK
    totals stay bit-identical to the scalar batched path. *)

type lanes

val lanes : ?capacity:int -> t -> lanes
(** Fresh lane instance (constants replicated into every lane).
    [capacity] defaults to {!Lanes.max_lanes}; raises
    [Invalid_argument] outside [1 .. Lanes.max_lanes]. *)

val lanes_plan : lanes -> t
val lanes_capacity : lanes -> int
val lanes_active : lanes -> int

val lanes_set_active : lanes -> int -> unit
(** Number of meaningful lanes for subsequent runs (1 to capacity). *)

val lanes_is_bool : lanes -> int -> bool
(** Whether a slot is width-1 (packed-word representation). *)

val lanes_word : lanes -> int -> int
(** Packed word of a width-1 slot. *)

val lanes_set_word : lanes -> int -> int -> unit
(** Store the packed word of a width-1 input slot (no width check —
    lane binders validate widths once at bind time). *)

val lanes_ints : lanes -> int -> int array
(** The lane-indexed row of a wide slot, for in-place load/readout. *)

val lanes_get : lanes -> int -> int -> int
(** [lanes_get ln slot lane]: one lane's raw value, either
    representation. *)

val lanes_bind_file : lanes -> string -> int array array -> unit
(** Bind a register file as one contents array per lane (outer array
    indexed by lane).  Unknown names are ignored.  The outer array is
    captured by reference: replacing an inner row later is seen by
    subsequent runs.  Reads mask the address by [row length - 1],
    mirroring {!Machine.Value.read_file}. *)

val run_lanes : lanes -> unit
(** Execute the tape across all active lanes.
    @raise Run_error on an unbound file. *)
