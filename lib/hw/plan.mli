(** Compiled evaluation plans (compile once, evaluate many).

    The cycle simulators used to re-traverse every synthesized
    expression each cycle through the tree-walking interpreter
    {!Eval.eval}, resolving registers and signals through string-keyed
    closures.  A {e plan} compiles a set of expressions once into a
    topologically ordered instruction tape over integer {e slots}:

    - common subexpressions are hash-consed and evaluated once per
      {!run};
    - widths are checked at compile time ({!Compile_error}), not per
      evaluation;
    - register and signal names are resolved to slot indices up front;
    - register-file reads dispatch through a pre-bound file table.

    {2 Building}

    A {!builder} compiles expressions incrementally.  {!define} names
    the result (later expressions referring to the name via
    [Expr.Input] resolve to its slot, like the simulator's
    definition-order signal lists); {!root} compiles an anonymous
    expression.  Both return the result slot.  [Expr.Input] names that
    are neither defines nor declared inputs are added as new input
    slots when the builder was created with [~auto:true], and rejected
    with {!Compile_error} otherwise.

    {2 Running}

    An {!instance} holds the mutable slot array for one evaluation
    context.  Bind the file table ({!bind_file}), load the input slots
    ({!set}), then {!run} executes the tape; read results with {!get}.
    A plan is immutable and can back any number of instances.

    {2 Instance reuse}

    Instances are designed to be reused across evaluation contexts
    rather than reallocated: {!reset} returns an instance to its
    freshly created state (constants reloaded, every other slot
    cleared, every file unbound), after which it may serve an
    unrelated program or data image over the same plan.  Rebinding is
    also supported without a reset: {!bind_file} {e replaces} the
    current reader for a file, and {!run} recomputes every non-input
    slot from scratch, so a caller that rebinds all files and reloads
    all input slots between runs observes no state from the previous
    evaluation.  {!reset} is the belt-and-braces form for handing an
    instance to a new context: it also clears slots left over from an
    aborted or cancelled run and downgrades stale file bindings back
    to {!Run_error}-raising stubs, so forgetting a rebind fails loudly
    instead of silently reading the previous context's data.

    {2 Thread safety}

    The plan/instance split is the concurrency contract for the whole
    simulation stack (see {!Exec.Pool}):

    - a built {!t} is {e immutable} — share it freely across domains;
      any number of instances may be created from and evaluated over
      the same plan concurrently;
    - a {!builder} and an {!instance} are single-domain mutable state:
      confine each to the domain that created it (one instance per
      concurrent evaluation, never shared).

    Callers running plan-backed simulations in an {!Exec.Pool} compile
    once and keep {e one reusable instance per domain} (domain-local
    storage keyed by the plan, as in {!Pipeline.Pipesem.local_session}),
    resetting or rebinding it between tasks instead of allocating a
    fresh instance inside every task. *)

exception Compile_error of string
(** Width mismatch, undeclared name, or duplicate definition. *)

exception Run_error of string
(** Unbound register file, or a width mismatch on a value entering the
    plan at run time ({!set}, or a file read returning the wrong
    width). *)

type t
(** A compiled plan: instruction tape, slot/width tables, name maps. *)

type builder

type instance
(** Mutable evaluation state over a plan's slots. *)

(** {1 Compilation} *)

val create :
  ?auto:bool ->
  ?inputs:(string * int) list ->
  ?files:(string * int) list ->
  unit ->
  builder
(** [create ~auto ~inputs ~files ()]: [inputs] declares external
    scalar inputs (name, width); [files] declares register files
    (name, data width).  [auto] (default [false]) adds undeclared
    names on demand instead of rejecting them. *)

val define : builder -> string -> Expr.t -> int
(** Compile and name a result; subsequent [Expr.Input] references to
    the name resolve to the returned slot.
    @raise Compile_error on re-definition or width errors. *)

val root : builder -> Expr.t -> int
(** Compile an anonymous expression; returns its slot. *)

val input : builder -> string -> int -> int
(** [input b name width] declares (or finds) the external input slot
    for [name].  @raise Compile_error on a width conflict. *)

val build : builder -> t
(** Freeze the tape.  The builder must not be used afterwards. *)

(** {1 Optimization}

    {!optimize} runs a semantics-preserving pass pipeline over a built
    tape: constant folding and propagation (any step whose operands
    are constants — including mux-with-constant-select collapse — is
    evaluated now through the same {!Bitvec} semantics {!run} uses),
    algebraic identities ([x & 0], [x | 0], [x ^ x], [eq x x],
    width-identity [zext]/[sext]/[slice], shifts by zero, ...),
    dead-code elimination by backward liveness, and tape compaction
    (surviving slots are renumbered densely, preserving topological
    order, so {!run} and {!run_lanes} walk a smaller array).

    Liveness roots are the named inputs, the named defines, and every
    slot handed out by {!root} while building — commit-write values,
    guards and addresses, mispredict probes — so file-write side
    effects can never be eliminated.  [O_file_read] steps are never
    {e folded} (the read depends on the reader bound at run time), but
    a dead read is killable: readers are pure.

    Because slots are renumbered, callers that captured raw slot
    indices must translate them through the remap array returned by
    {!optimize_remap}: [remap.(old_slot)] is the new slot, or [-1] if
    the slot was removed (never the case for inputs, defines or
    {!root} results).  Name-based lookups ({!input_slot},
    {!define_slot}, {!read_name}, {!iter_inputs}, {!bind_file}) work
    unchanged on the optimized plan.

    After folding, {e LUT synthesis} collapses whole combinational
    cones whose transitive support fits in at most two slots and 12
    total bits — instruction decode trees, comparator chains against
    constants, small next-state functions — into single table-lookup
    steps over tables built by exhaustive enumeration through the same
    {!Bitvec} semantics (equivalent by construction).  Synthesis
    iterates to a bounded fixpoint: each round's table outputs are
    frontier slots the next round can fold cones over.  Cones whose
    support is entirely 1-bit slots are left alone — the lanes engine
    already evaluates packed boolean logic at one word op per step.

    [count] (default [true]) adds the number of eliminated tape steps
    and slots to {!Obs.Counters.Plan_ops_folded} /
    {!Obs.Counters.Slots_killed}.  Optimizing an already optimized
    plan cannot shrink it further (and counts nothing). *)

val optimize :
  ?count:bool -> ?keep_define:(string -> bool) -> ?lut:bool -> t -> t
(** [optimize p] = [fst (optimize_remap p)]. *)

val optimize_remap :
  ?count:bool ->
  ?keep_define:(string -> bool) ->
  ?lut:bool ->
  t ->
  t * int array
(** The optimized plan plus the old-slot → new-slot translation.

    [keep_define] narrows the define liveness roots: only defines it
    accepts are kept alive for their own sake (the rest survive only
    where they feed a kept root).  Callers that read back a known name
    set — the verification hot path reads only the per-stage hazard
    signals — use this to let the unobserved signal forest die.
    Dropped defines are removed from the name tables, so
    {!define_slot} / {!read_name} on them return [None] rather than a
    stale slot.  Default: keep every define.

    [lut] (default [true]) enables LUT synthesis.  [lut:false] stops
    after fold/DCE/compaction: the tape variant for the lanes engine,
    whose packed boolean word ops and tight per-lane loops both beat
    per-lane table walks (see {!with_work_equiv}). *)

val with_work_equiv : equiv:t -> t -> t
(** [with_work_equiv ~equiv p] marks [p] as an engine-specific variant
    of the canonical tape [equiv]: WORK counters for runs of [p] are
    accounted against [equiv]'s geometry ({!work_equiv}), so a lanes
    run over a fold-only tape reports bit-identical [Plan_ops] to the
    scalar run over the LUT tape it replays.  Both plans must be
    segmented into the same logical groups. *)

val work_equiv : t -> t
(** The plan whose geometry defines this plan's scalar-equivalent WORK
    accounting: the [equiv] twin when one was attached, the plan
    itself otherwise. *)

(** {1 Segmentation}

    The pipeline step engine consumes most tape slots {e conditionally}:
    a stage's commit-write values, guards and addresses are read only on
    the cycles that stage fires, and a speculation's rollback values
    only on the cycles it mispredicts.  {!segment} splits an (already
    optimized) tape into an always-evaluated {e control prefix} plus one
    on-demand {e group} per conditional consumer, so hot paths run
    {!run_control} every cycle and {!run_group} only for the stages that
    actually fire — the dominant [Plan_ops] saving of the optimizer.

    [segment p ~ctrl_roots ~groups] assigns each tape step to the single
    group whose roots (transitively) read it; steps read by no group, by
    two or more groups, by a [ctrl_roots] slot, or by any named define
    (reachable through {!read_name} / {!define_slot} at any time) land
    in the control prefix, and control membership propagates to operands
    so the prefix is self-contained.  Only the tape {e order} changes —
    slot numbers, names and constants are untouched, and the reordered
    tape remains topological (a group's operands live in the control
    prefix or earlier in the same group).  {!run} still evaluates
    everything, so segmentation never changes results for full-tape
    callers; at most 62 groups.

    Gated callers must read a group's slots only after running that
    group {e in the same cycle} — between cycles a skipped group's slots
    hold stale values. *)

val segment : ?ctrl_roots:int array -> t -> groups:int array list -> t
(** [segment ~ctrl_roots p ~groups]: [groups] lists each conditional
    consumer's root slots ([groups = []] returns [p] unchanged);
    [ctrl_roots] (default [[||]]) adds slots the caller reads
    unconditionally every cycle (mispredict probes). *)

val is_segmented : t -> bool

val n_ctrl_instrs : t -> int
(** Control-prefix length: the per-cycle floor of a gated run.  Equals
    {!n_instrs} on unsegmented plans. *)

val n_groups : t -> int
(** Number of on-demand groups (0 on unsegmented plans). *)

val group_instrs : t -> int -> int
(** Tape steps in one group: the marginal cost of a cycle that runs
    it. *)

val optimize_default : unit -> bool
(** The process-wide default the compile entry points
    ([Pipeline.Pipesem.compile], [Machine.Seqsem.compile], ...) read
    for their [?optimize] argument.  Starts [true]. *)

val set_optimize_default : bool -> unit
(** Override the process-wide default (the bench's [--no-opt] leg and
    [pipegen --no-opt] flip it to [false] before any compilation). *)

val stats : t -> (string * int) list
(** Plan shape for reports: [("slots", _); ("consts", _);
    ("instrs", _)] followed by a per-opcode histogram of the tape
    (["binop_add"], ["mux"], ["file_read"], ...), sorted by name,
    zero-count opcodes omitted. *)

val pp : Format.formatter -> t -> unit
(** Dump the tape: one line per constant and per instruction, slots
    annotated with their names where they have one ([pipegen plan
    --dump]). *)

(** {1 Plan structure} *)

val n_slots : t -> int

val n_instrs : t -> int
(** Tape length — the per-{!run} work, after hash-consing. *)

val input_slot : t -> string -> int option
val define_slot : t -> string -> int option

val slot_of_name : t -> string -> int option
(** Defines first, then inputs: the slot a name resolves to. *)

val iter_inputs : t -> (string -> slot:int -> width:int -> unit) -> unit
val iter_files : t -> (string -> index:int -> width:int -> unit) -> unit

val slot_name : t -> int -> string option
(** Slot-to-name view for name-based callback interfaces (inverse of
    {!slot_of_name}; anonymous interior slots yield [None]). *)

(** {1 Evaluation} *)

val instance : t -> instance
(** Fresh slots (constants preloaded), no files bound. *)

val reset : instance -> unit
(** Return the instance to its freshly created state: constants are
    reloaded, every other slot is cleared, and every file binding is
    dropped (subsequent file reads raise {!Run_error} until
    {!bind_file} is called again).  Equivalent to replacing the
    instance with [instance (plan of inst)] but without allocation;
    see the instance-reuse contract above. *)

val bind_file : instance -> string -> (Bitvec.t -> Bitvec.t) -> unit
(** Bind a register-file reader.  Unknown names are ignored (the plan
    never reads them).  Readers are consulted on every [File_read]
    executed by {!run}; results are width-checked ({!Run_error}). *)

val set : instance -> int -> Bitvec.t -> unit
(** Load an input slot.  @raise Run_error on width mismatch. *)

val run : instance -> unit
(** Execute the tape: every non-input slot receives its value.
    @raise Run_error on an unbound file. *)

val run_control : instance -> unit
(** Execute only the control prefix of a {!segment}ed plan (the whole
    tape when unsegmented).  Counts one [Plan_runs] plus
    control-prefix-length [Plan_ops], so a gated cycle and a full {!run}
    cycle stay comparable run-for-run. *)

val run_group : instance -> int -> unit
(** Execute one on-demand group ({!run_control} must already have run
    this cycle).  Counts the group's length into [Plan_ops] and does
    {e not} bump [Plan_runs] — the cycle was already counted by
    {!run_control}. *)

val get : instance -> int -> Bitvec.t
val get_bool : instance -> int -> bool

val read_name : instance -> string -> Bitvec.t option
(** Name-based lookup over defines and inputs (callback compatibility
    view). *)

val slot_width : t -> int -> int
(** Declared width of a slot. *)

(** {1 Bit-parallel lanes}

    A {!lanes} instance evaluates the same tape for up to
    {!Lanes.max_lanes} independent programs at once.  Width-1 slots
    are carried as one packed word per slot (bit [l] = lane [l]), so
    the boolean control fabric — stalls, fulls, hazard hits, squashes
    — advances every lane with single word ops; wider slots hold one
    raw (unboxed) int per lane and evaluate with flat array sweeps.

    Garbage discipline: bits and entries at index [>= lanes_active]
    are unspecified.  Callers load input slots with {!lanes_set_word}
    / {!lanes_ints} (mutate the row in place), bind register files as
    one [int array] per lane, and read results the same way.

    Like an {!instance}, a lanes instance is single-domain mutable
    state over an immutable shared plan.

    {!run_lanes} counts {e nothing} into {!Obs.Counters}: lane callers
    stage the equivalent scalar work (one [Plan_runs] / tape-length
    [Plan_ops] per lane) into an {!Obs.Counters.ledger} so the WORK
    totals stay bit-identical to the scalar batched path. *)

type lanes

val lanes : ?capacity:int -> t -> lanes
(** Fresh lane instance (constants replicated into every lane).
    [capacity] defaults to {!Lanes.max_lanes}; raises
    [Invalid_argument] outside [1 .. Lanes.max_lanes]. *)

val lanes_plan : lanes -> t
val lanes_capacity : lanes -> int
val lanes_active : lanes -> int

val lanes_set_active : lanes -> int -> unit
(** Number of meaningful lanes for subsequent runs (1 to capacity). *)

val lanes_is_bool : lanes -> int -> bool
(** Whether a slot is width-1 (packed-word representation). *)

val lanes_word : lanes -> int -> int
(** Packed word of a width-1 slot. *)

val lanes_set_word : lanes -> int -> int -> unit
(** Store the packed word of a width-1 input slot (no width check —
    lane binders validate widths once at bind time). *)

val lanes_ints : lanes -> int -> int array
(** The lane-indexed row of a wide slot, for in-place load/readout. *)

val lanes_get : lanes -> int -> int -> int
(** [lanes_get ln slot lane]: one lane's raw value, either
    representation. *)

val lanes_bind_file : lanes -> string -> int array array -> unit
(** Bind a register file as one contents array per lane (outer array
    indexed by lane).  Unknown names are ignored.  The outer array is
    captured by reference: replacing an inner row later is seen by
    subsequent runs.  Reads mask the address by [row length - 1],
    mirroring {!Machine.Value.read_file}. *)

val run_lanes : lanes -> unit
(** Execute the tape across all active lanes.
    @raise Run_error on an unbound file. *)

val run_lanes_control : lanes -> unit
(** Execute only the control prefix across all active lanes (the whole
    tape when unsegmented).  Counts nothing, like {!run_lanes}. *)

val run_lanes_group : lanes -> int -> unit
(** Execute one on-demand group across all active lanes (a lane whose
    stage did not fire computes throwaway values — harmless, its commit
    is masked out).  Counts nothing, like {!run_lanes}. *)
