exception Compile_error of string
exception Run_error of string

let cerr fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt
let rerr fmt = Format.kasprintf (fun s -> raise (Run_error s)) fmt

(* One tape instruction; [dst] is the slot written. *)
type op =
  | O_unop of Expr.unop * int
  | O_binop of Expr.binop * int * int
  | O_mux of int * int * int
  | O_concat of int * int
  | O_slice of int * int * int
  | O_zext of int * int
  | O_sext of int * int
  | O_file_read of int * int * int  (* file index, addr slot, data width *)
  | O_lut of int * int  (* operand slot, table index: dst = tbl.(a) *)
  | O_lut2 of int * int * int
      (* operand slots a b, table index: dst = tbl.((a lsl width_b) lor b).
         Both lut forms are synthesized by [tableify]: a small-support
         combinational cone collapsed into one exhaustively-enumerated
         lookup, provably equivalent by construction. *)

type step = { dst : int; op : op }

(* Hash-consing key: structure plus child slots.  Two syntactically
   different subtrees that compile to the same key share a slot. *)
type key =
  | K_const of Bitvec.t
  | K_unop of Expr.unop * int
  | K_binop of Expr.binop * int * int
  | K_mux of int * int * int
  | K_concat of int * int
  | K_slice of int * int * int
  | K_zext of int * int
  | K_sext of int * int
  | K_file_read of int * int

type builder = {
  auto : bool;
  mutable n_slots : int;
  mutable widths : int array;  (* slot -> width, grown on demand *)
  mutable consts_rev : (int * Bitvec.t) list;
  mutable tape_rev : step list;
  b_inputs : (string, int * int) Hashtbl.t;   (* name -> slot, width *)
  b_defines : (string, int * int) Hashtbl.t;  (* name -> slot, width *)
  b_files : (string, int * int) Hashtbl.t;    (* name -> index, width *)
  mutable n_files : int;
  cse : (key, int) Hashtbl.t;
  mutable roots_rev : int list;  (* slots returned by [root] *)
  mutable built : bool;
}

type t = {
  p_n_slots : int;
  p_widths : int array;
  consts : (int * Bitvec.t) array;
  tape : step array;
  p_inputs : (string, int * int) Hashtbl.t;
  p_defines : (string, int * int) Hashtbl.t;
  p_files : (string, int * int) Hashtbl.t;
  file_names : string array;  (* index -> name, for errors *)
  file_widths : int array;
  names : string option array;  (* slot -> name view *)
  p_roots : int array;
      (* every slot handed out by [root]: liveness roots for
         [optimize], alongside the named inputs and defines *)
  p_ctrl : int;
      (* control-prefix length: [tape.(0 .. p_ctrl - 1)] is the
         always-evaluated segment.  Unsegmented plans have
         [p_ctrl = Array.length tape]. *)
  p_groups : (int * int) array;
      (* on-demand segments: group [g] is [tape.(lo .. hi - 1)],
         evaluated by [run_group] only on the cycles that consume its
         slots.  [[||]] for unsegmented plans. *)
  p_tables : Bitvec.t array array;
      (* lookup tables backing [O_lut]/[O_lut2]; every entry of table
         [t] has the destination slot's width.  Immutable and shared
         freely across domains, like the rest of the plan. *)
  p_equiv : t option;
      (* work-accounting twin: when this tape is an engine-specific
         variant (the lanes engine runs the fold-only tape — per-lane
         table walks would regress its packed boolean logic), [Some]
         holds the canonical scalar tape whose geometry defines the
         scalar-equivalent WORK counters, keeping lanes and scalar
         runs bit-identical on every counter. *)
}

type instance = {
  plan : t;
  slots : Bitvec.t array;
  files : (Bitvec.t -> Bitvec.t) array;
}

let alloc b w =
  let s = b.n_slots in
  b.n_slots <- s + 1;
  let cap = Array.length b.widths in
  if s >= cap then begin
    let widths = Array.make (max 16 (2 * cap)) 0 in
    Array.blit b.widths 0 widths 0 cap;
    b.widths <- widths
  end;
  b.widths.(s) <- w;
  s

let width_ok w = w >= 1 && w <= Bitvec.max_width

let add_input b name w =
  if not (width_ok w) then cerr "input %s: width %d" name w;
  match Hashtbl.find_opt b.b_inputs name with
  | Some (s, w') ->
    if w' <> w then
      cerr "input %s: declared width %d, expression expects %d" name w' w;
    s
  | None ->
    let s = alloc b w in
    Hashtbl.replace b.b_inputs name (s, w);
    s

let add_file b name w =
  if not (width_ok w) then cerr "file %s: width %d" name w;
  match Hashtbl.find_opt b.b_files name with
  | Some (i, w') ->
    if w' <> w then
      cerr "file %s: declared width %d, expression expects %d" name w' w;
    i
  | None ->
    if not b.auto then cerr "unknown register file %s" name;
    let i = b.n_files in
    b.n_files <- i + 1;
    Hashtbl.replace b.b_files name (i, w);
    i

let create ?(auto = false) ?(inputs = []) ?(files = []) () =
  let b =
    {
      auto;
      n_slots = 0;
      widths = Array.make 64 0;
      consts_rev = [];
      tape_rev = [];
      b_inputs = Hashtbl.create 64;
      b_defines = Hashtbl.create 64;
      b_files = Hashtbl.create 4;
      n_files = 0;
      cse = Hashtbl.create 256;
      roots_rev = [];
      built = false;
    }
  in
  List.iter (fun (n, w) -> ignore (add_input b n w)) inputs;
  List.iter
    (fun (n, w) ->
      if not (width_ok w) then cerr "file %s: width %d" n w;
      if not (Hashtbl.mem b.b_files n) then begin
        Hashtbl.replace b.b_files n (b.n_files, w);
        b.n_files <- b.n_files + 1
      end)
    files;
  b

let intern b key w op =
  match Hashtbl.find_opt b.cse key with
  | Some s -> s
  | None ->
    let s = alloc b w in
    Hashtbl.replace b.cse key s;
    b.tape_rev <- { dst = s; op } :: b.tape_rev;
    s

let intern_const b v =
  let key = K_const v in
  match Hashtbl.find_opt b.cse key with
  | Some s -> s
  | None ->
    let s = alloc b (Bitvec.width v) in
    Hashtbl.replace b.cse key s;
    b.consts_rev <- (s, v) :: b.consts_rev;
    s

(* Compile one expression bottom-up.  Width rules mirror [Expr.width],
   but run over already-compiled child slots, so each shared node is
   checked (and compiled) exactly once. *)
let rec compile b e =
  let w s = b.widths.(s) in
  match e with
  | Expr.Const v -> intern_const b v
  | Expr.Input (name, wi) -> (
    match Hashtbl.find_opt b.b_defines name with
    | Some (s, wd) ->
      if wd <> wi then
        cerr "input %s: defined width %d, expression expects %d" name wd wi;
      s
    | None ->
      if b.auto || Hashtbl.mem b.b_inputs name then add_input b name wi
      else cerr "unknown input %s" name)
  | Expr.Unop (op, a) ->
    let sa = compile b a in
    let wr =
      match op with
      | Expr.Not | Expr.Neg -> w sa
      | Expr.Reduce_or | Expr.Reduce_and -> 1
    in
    intern b (K_unop (op, sa)) wr (O_unop (op, sa))
  | Expr.Binop (op, a, bb) ->
    let sa = compile b a in
    let sb = compile b bb in
    let wa = w sa and wb = w sb in
    let wr =
      match op with
      | Expr.Add | Expr.Sub | Expr.Mul | Expr.And | Expr.Or | Expr.Xor ->
        if wa <> wb then cerr "binop operand widths %d vs %d" wa wb;
        wa
      | Expr.Eq | Expr.Ne | Expr.Ltu | Expr.Lts ->
        if wa <> wb then cerr "comparison operand widths %d vs %d" wa wb;
        1
      | Expr.Shl | Expr.Shr | Expr.Sra -> wa
    in
    intern b (K_binop (op, sa, sb)) wr (O_binop (op, sa, sb))
  | Expr.Mux (s, a, bb) ->
    let ss = compile b s in
    let sa = compile b a in
    let sb = compile b bb in
    if w ss <> 1 then cerr "mux select width %d (want 1)" (w ss);
    if w sa <> w sb then cerr "mux branch widths %d vs %d" (w sa) (w sb);
    intern b (K_mux (ss, sa, sb)) (w sa) (O_mux (ss, sa, sb))
  | Expr.Concat (hi, lo) ->
    let sh = compile b hi in
    let sl = compile b lo in
    let wr = w sh + w sl in
    if wr > Bitvec.max_width then cerr "concat result width %d too large" wr;
    intern b (K_concat (sh, sl)) wr (O_concat (sh, sl))
  | Expr.Slice (a, hi, lo) ->
    let sa = compile b a in
    let wa = w sa in
    if lo < 0 || hi < lo || hi >= wa then
      cerr "slice [%d:%d] of %d-bit expression" hi lo wa;
    intern b (K_slice (sa, hi, lo)) (hi - lo + 1) (O_slice (sa, hi, lo))
  | Expr.Zext (a, wz) ->
    let sa = compile b a in
    let wa = w sa in
    if wz < wa || wz > Bitvec.max_width then cerr "extend %d-bit to %d bits" wa wz;
    if wz = wa then sa else intern b (K_zext (sa, wz)) wz (O_zext (sa, wz))
  | Expr.Sext (a, wz) ->
    let sa = compile b a in
    let wa = w sa in
    if wz < wa || wz > Bitvec.max_width then cerr "extend %d-bit to %d bits" wa wz;
    if wz = wa then sa else intern b (K_sext (sa, wz)) wz (O_sext (sa, wz))
  | Expr.File_read { file; data_width; addr } ->
    let sa = compile b addr in
    let fi = add_file b file data_width in
    intern b (K_file_read (fi, sa)) data_width (O_file_read (fi, sa, data_width))

let check_built b = if b.built then cerr "builder already built"

let root b e =
  check_built b;
  let s = compile b e in
  b.roots_rev <- s :: b.roots_rev;
  s

let define b name e =
  check_built b;
  if Hashtbl.mem b.b_defines name then cerr "duplicate definition of %s" name;
  if Hashtbl.mem b.b_inputs name then
    cerr "definition of %s collides with a declared input" name;
  let s = compile b e in
  Hashtbl.replace b.b_defines name (s, b.widths.(s));
  s

let input b name w =
  check_built b;
  match Hashtbl.find_opt b.b_defines name with
  | Some _ -> cerr "input %s collides with a definition" name
  | None -> add_input b name w

let build b =
  check_built b;
  b.built <- true;
  let file_names = Array.make b.n_files "" in
  let file_widths = Array.make b.n_files 0 in
  Hashtbl.iter
    (fun n (i, w) ->
      file_names.(i) <- n;
      file_widths.(i) <- w)
    b.b_files;
  let names = Array.make (max b.n_slots 1) None in
  Hashtbl.iter (fun n (s, _) -> names.(s) <- Some n) b.b_inputs;
  Hashtbl.iter (fun n (s, _) -> names.(s) <- Some n) b.b_defines;
  let tape = Array.of_list (List.rev b.tape_rev) in
  {
    p_n_slots = b.n_slots;
    p_widths = Array.sub b.widths 0 (max b.n_slots 1);
    consts = Array.of_list (List.rev b.consts_rev);
    tape;
    p_inputs = b.b_inputs;
    p_defines = b.b_defines;
    p_files = b.b_files;
    file_names;
    file_widths;
    names;
    p_roots = Array.of_list (List.rev b.roots_rev);
    p_ctrl = Array.length tape;
    p_groups = [||];
    p_tables = [||];
    p_equiv = None;
  }

let n_slots p = p.p_n_slots
let n_instrs p = Array.length p.tape
let input_slot p n = Option.map fst (Hashtbl.find_opt p.p_inputs n)
let define_slot p n = Option.map fst (Hashtbl.find_opt p.p_defines n)

let slot_of_name p n =
  match define_slot p n with Some _ as s -> s | None -> input_slot p n

let iter_inputs p f =
  Hashtbl.iter (fun n (slot, width) -> f n ~slot ~width) p.p_inputs

let iter_files p f =
  Hashtbl.iter (fun n (index, width) -> f n ~index ~width) p.p_files

let slot_name p s =
  if s >= 0 && s < Array.length p.names then p.names.(s) else None

let unbound_reader p i _ = rerr "unbound register file %s" p.file_names.(i)

let instance p =
  let slots = Array.make (max p.p_n_slots 1) (Bitvec.zero 1) in
  Array.iter (fun (s, v) -> slots.(s) <- v) p.consts;
  let files =
    Array.init (Array.length p.file_names) (fun i -> unbound_reader p i)
  in
  { plan = p; slots; files }

let reset inst =
  let p = inst.plan in
  Array.fill inst.slots 0 (Array.length inst.slots) (Bitvec.zero 1);
  Array.iter (fun (s, v) -> inst.slots.(s) <- v) p.consts;
  for i = 0 to Array.length inst.files - 1 do
    inst.files.(i) <- unbound_reader p i
  done

let bind_file inst name reader =
  match Hashtbl.find_opt inst.plan.p_files name with
  | None -> ()
  | Some (i, _) -> inst.files.(i) <- reader

let set inst s v =
  let w = inst.plan.p_widths.(s) in
  if Bitvec.width v <> w then
    rerr "input %s: stored width %d, expression expects %d"
      (match slot_name inst.plan s with Some n -> n | None -> string_of_int s)
      (Bitvec.width v) w;
  inst.slots.(s) <- v

let apply_unop op a =
  match op with
  | Expr.Not -> Bitvec.lognot a
  | Expr.Neg -> Bitvec.neg a
  | Expr.Reduce_or -> Bitvec.of_bool (not (Bitvec.is_zero a))
  | Expr.Reduce_and ->
    Bitvec.of_bool (Bitvec.equal a (Bitvec.ones (Bitvec.width a)))

let apply_binop op a b =
  match op with
  | Expr.Add -> Bitvec.add a b
  | Expr.Sub -> Bitvec.sub a b
  | Expr.Mul -> Bitvec.mul a b
  | Expr.And -> Bitvec.logand a b
  | Expr.Or -> Bitvec.logor a b
  | Expr.Xor -> Bitvec.logxor a b
  | Expr.Eq -> Bitvec.eq a b
  | Expr.Ne -> Bitvec.lognot (Bitvec.eq a b)
  | Expr.Ltu -> Bitvec.lt_unsigned a b
  | Expr.Lts -> Bitvec.lt_signed a b
  | Expr.Shl -> Bitvec.shift_left a (Bitvec.to_int b)
  | Expr.Shr -> Bitvec.shift_right_logical a (Bitvec.to_int b)
  | Expr.Sra -> Bitvec.shift_right_arith a (Bitvec.to_int b)

let run_range inst lo hi =
  let s = inst.slots in
  let tape = inst.plan.tape in
  for i = lo to hi - 1 do
    let { dst; op } = Array.unsafe_get tape i in
    let v =
      match op with
      | O_unop (o, a) -> apply_unop o s.(a)
      | O_binop (o, a, b) -> apply_binop o s.(a) s.(b)
      | O_mux (c, a, b) -> if Bitvec.to_bool s.(c) then s.(a) else s.(b)
      | O_concat (a, b) -> Bitvec.concat s.(a) s.(b)
      | O_slice (a, hi, lo) -> Bitvec.slice s.(a) ~hi ~lo
      | O_zext (a, w) -> Bitvec.zero_extend s.(a) w
      | O_sext (a, w) -> Bitvec.sign_extend s.(a) w
      | O_file_read (f, a, w) ->
        let v = inst.files.(f) s.(a) in
        if Bitvec.width v <> w then
          rerr "file %s: stored width %d, expression expects %d"
            inst.plan.file_names.(f) (Bitvec.width v) w;
        v
      | O_lut (a, t) ->
        Array.unsafe_get
          (Array.unsafe_get inst.plan.p_tables t)
          (Bitvec.to_int s.(a))
      | O_lut2 (a, b, t) ->
        Array.unsafe_get
          (Array.unsafe_get inst.plan.p_tables t)
          ((Bitvec.to_int s.(a) lsl inst.plan.p_widths.(b))
          lor Bitvec.to_int s.(b))
    in
    s.(dst) <- v
  done

let run inst =
  let len = Array.length inst.plan.tape in
  Obs.Counters.bump Obs.Counters.Plan_runs;
  Obs.Counters.add Obs.Counters.Plan_ops len;
  run_range inst 0 len

let run_control inst =
  let ctrl = inst.plan.p_ctrl in
  Obs.Counters.bump Obs.Counters.Plan_runs;
  Obs.Counters.add Obs.Counters.Plan_ops ctrl;
  run_range inst 0 ctrl

let run_group inst g =
  let lo, hi = inst.plan.p_groups.(g) in
  Obs.Counters.add Obs.Counters.Plan_ops (hi - lo);
  run_range inst lo hi

let get inst slot = inst.slots.(slot)
let get_bool inst slot = Bitvec.to_bool inst.slots.(slot)

let read_name inst name =
  match slot_of_name inst.plan name with
  | Some s -> Some inst.slots.(s)
  | None -> None

let slot_width p s = p.p_widths.(s)

(* ------------------------------------------------------------------ *)
(* Bit-parallel lane evaluation                                        *)
(* ------------------------------------------------------------------ *)

(* A lane instance evaluates the same tape for up to [l_cap] programs
   at once.  Width-1 slots live as one packed word per slot (bit [l] =
   lane [l]); wider slots as one raw int per lane per slot.  Register
   files are one int array per lane, bound by the lane state.

   Garbage discipline: bits [l_active ..] of a packed word, and
   entries [l_active ..] of a per-lane array, are unspecified.  Word
   ops run over the whole word and only mask where an [lnot] would
   otherwise smear ones upward; per-lane ops only visit active lanes.

   [run_lanes] deliberately counts nothing: callers account the
   equivalent scalar work through an [Obs.Counters.ledger] so the
   WORK totals stay bit-identical to the scalar batched path. *)
type lanes = {
  l_plan : t;
  l_cap : int;
  l_all : int;  (* mask_of_count l_cap *)
  mutable l_active : int;
  mutable l_mask : int;  (* mask_of_count l_active *)
  l_bool : bool array;  (* slot -> width = 1 *)
  l_words : int array;  (* packed word, one per width-1 slot *)
  l_vals : int array array;  (* lane-indexed ints, one row per wide slot *)
  l_files : int array array array;  (* file -> lane -> contents; [||] unbound *)
  l_tables : int array array;
      (* [p_tables] lowered to raw ints once at lane creation *)
}

let lanes ?(capacity = Lanes.max_lanes) p =
  if capacity < 1 || capacity > Lanes.max_lanes then
    invalid_arg (Printf.sprintf "Plan.lanes: capacity %d" capacity);
  let n = max p.p_n_slots 1 in
  let l_bool = Array.init n (fun s -> p.p_widths.(s) = 1) in
  let ln =
    {
      l_plan = p;
      l_cap = capacity;
      l_all = Lanes.mask_of_count capacity;
      l_active = capacity;
      l_mask = Lanes.mask_of_count capacity;
      l_bool;
      l_words = Array.make n 0;
      l_vals =
        Array.init n (fun s ->
            if l_bool.(s) then [||] else Array.make capacity 0);
      l_files = Array.make (Array.length p.file_names) [||];
      l_tables = Array.map (Array.map Bitvec.to_int) p.p_tables;
    }
  in
  (* Constants are replicated across every lane once: no tape step
     writes a const slot, so they survive any number of runs. *)
  Array.iter
    (fun (s, v) ->
      if l_bool.(s) then
        ln.l_words.(s) <- (if Bitvec.to_bool v then ln.l_all else 0)
      else Array.fill ln.l_vals.(s) 0 capacity (Bitvec.to_int v))
    p.consts;
  ln

let lanes_plan ln = ln.l_plan
let lanes_capacity ln = ln.l_cap
let lanes_active ln = ln.l_active

let lanes_set_active ln n =
  if n < 1 || n > ln.l_cap then
    invalid_arg (Printf.sprintf "Plan.lanes_set_active: %d" n);
  ln.l_active <- n;
  ln.l_mask <- Lanes.mask_of_count n

let lanes_is_bool ln s = ln.l_bool.(s)
let lanes_word ln s = ln.l_words.(s)
let lanes_set_word ln s w = ln.l_words.(s) <- w
let lanes_ints ln s = ln.l_vals.(s)

let lanes_get ln s l =
  if ln.l_bool.(s) then (ln.l_words.(s) lsr l) land 1 else ln.l_vals.(s).(l)

let lanes_bind_file ln name rows =
  match Hashtbl.find_opt ln.l_plan.p_files name with
  | None -> ()
  | Some (i, _) -> ln.l_files.(i) <- rows

(* Raw-int mirrors of the Bitvec primitives.  These must agree with
   bitvec.ml bit for bit, including the width-62 special cases. *)
let maskw w = if w = Bitvec.max_width then max_int else (1 lsl w) - 1

let signedw w v =
  if w = Bitvec.max_width then v
  else if v land (1 lsl (w - 1)) <> 0 then v - (1 lsl w)
  else v

let run_lanes_range ln lo hi =
  let p = ln.l_plan in
  let words = ln.l_words and vals = ln.l_vals and isb = ln.l_bool in
  let widths = p.p_widths in
  let act = ln.l_active in
  let amask = ln.l_mask in
  let geti s l =
    if Array.unsafe_get isb s then (Array.unsafe_get words s lsr l) land 1
    else Array.unsafe_get (Array.unsafe_get vals s) l
  in
  let tape = p.tape in
  for i = lo to hi - 1 do
    let { dst; op } = Array.unsafe_get tape i in
    match op with
    | O_unop (o, a) ->
      if isb.(dst) then begin
        if isb.(a) then
          words.(dst) <-
            (match o with
            | Expr.Not -> lnot words.(a) land amask
            | Expr.Neg | Expr.Reduce_or | Expr.Reduce_and -> words.(a))
        else begin
          (* reduction of a wide operand into a packed bit *)
          let va = vals.(a) in
          let full = maskw widths.(a) in
          let w = ref 0 in
          (match o with
          | Expr.Reduce_or ->
            for l = 0 to act - 1 do
              if (Array.unsafe_get va l) <> 0 then w := !w lor (1 lsl l)
            done
          | Expr.Reduce_and ->
            for l = 0 to act - 1 do
              if (Array.unsafe_get va l) = full then w := !w lor (1 lsl l)
            done
          | Expr.Not | Expr.Neg -> assert false);
          words.(dst) <- !w
        end
      end
      else begin
        let va = vals.(a) and vd = vals.(dst) in
        let m = maskw widths.(dst) in
        match o with
        | Expr.Not ->
          for l = 0 to act - 1 do
            Array.unsafe_set vd l (lnot (Array.unsafe_get va l) land m)
          done
        | Expr.Neg ->
          for l = 0 to act - 1 do
            Array.unsafe_set vd l (-(Array.unsafe_get va l) land m)
          done
        | Expr.Reduce_or | Expr.Reduce_and -> assert false
      end
    | O_binop (o, a, b) ->
      if isb.(dst) then begin
        if isb.(a) && isb.(b) then
          (* both operands packed: one word op serves every lane *)
          let wa = words.(a) and wb = words.(b) in
          words.(dst) <-
            (match o with
            | Expr.And | Expr.Mul -> wa land wb
            | Expr.Or -> wa lor wb
            | Expr.Xor | Expr.Add | Expr.Sub | Expr.Ne -> wa lxor wb
            | Expr.Eq -> lnot (wa lxor wb) land amask
            | Expr.Ltu -> lnot wa land wb land amask
            | Expr.Lts -> wa land lnot wb land amask
            | Expr.Shl | Expr.Shr -> wa land lnot wb land amask
            | Expr.Sra -> wa)
        else begin
          let w = ref 0 in
          (match o with
          | Expr.Eq ->
            let va = vals.(a) and vb = vals.(b) in
            for l = 0 to act - 1 do
              if (Array.unsafe_get va l) = (Array.unsafe_get vb l) then w := !w lor (1 lsl l)
            done
          | Expr.Ne ->
            let va = vals.(a) and vb = vals.(b) in
            for l = 0 to act - 1 do
              if (Array.unsafe_get va l) <> (Array.unsafe_get vb l) then w := !w lor (1 lsl l)
            done
          | Expr.Ltu ->
            (* masked values are non-negative: plain int compare *)
            let va = vals.(a) and vb = vals.(b) in
            for l = 0 to act - 1 do
              if (Array.unsafe_get va l) < (Array.unsafe_get vb l) then w := !w lor (1 lsl l)
            done
          | Expr.Lts ->
            let va = vals.(a) and vb = vals.(b) in
            let wd = widths.(a) in
            for l = 0 to act - 1 do
              if signedw wd (Array.unsafe_get va l) < signedw wd (Array.unsafe_get vb l) then
                w := !w lor (1 lsl l)
            done
          | Expr.Shl | Expr.Shr ->
            (* width-1 value, wide shift amount: survives only amt=0 *)
            let wa = words.(a) in
            for l = 0 to act - 1 do
              if geti b l = 0 then w := !w lor (wa land (1 lsl l))
            done
          | Expr.Sra ->
            (* amt clamped to width-1 = 0: identity *)
            w := words.(a)
          | Expr.Add | Expr.Sub | Expr.Mul | Expr.And | Expr.Or | Expr.Xor ->
            (* equal operand widths: both packed, handled above *)
            assert false);
          words.(dst) <- !w
        end
      end
      else begin
        let vd = vals.(dst) in
        let wd = widths.(dst) in
        let m = maskw wd in
        match o with
        | Expr.Add ->
          let va = vals.(a) and vb = vals.(b) in
          for l = 0 to act - 1 do
            Array.unsafe_set vd l (((Array.unsafe_get va l) + (Array.unsafe_get vb l)) land m)
          done
        | Expr.Sub ->
          let va = vals.(a) and vb = vals.(b) in
          for l = 0 to act - 1 do
            Array.unsafe_set vd l (((Array.unsafe_get va l) - (Array.unsafe_get vb l)) land m)
          done
        | Expr.Mul ->
          let va = vals.(a) and vb = vals.(b) in
          for l = 0 to act - 1 do
            Array.unsafe_set vd l ((Array.unsafe_get va l) * (Array.unsafe_get vb l) land m)
          done
        | Expr.And ->
          let va = vals.(a) and vb = vals.(b) in
          for l = 0 to act - 1 do
            Array.unsafe_set vd l ((Array.unsafe_get va l) land (Array.unsafe_get vb l))
          done
        | Expr.Or ->
          let va = vals.(a) and vb = vals.(b) in
          for l = 0 to act - 1 do
            Array.unsafe_set vd l ((Array.unsafe_get va l) lor (Array.unsafe_get vb l))
          done
        | Expr.Xor ->
          let va = vals.(a) and vb = vals.(b) in
          for l = 0 to act - 1 do
            Array.unsafe_set vd l ((Array.unsafe_get va l) lxor (Array.unsafe_get vb l))
          done
        | Expr.Shl ->
          let va = vals.(a) in
          for l = 0 to act - 1 do
            let n = geti b l in
            Array.unsafe_set vd l ((if n >= wd then 0 else (Array.unsafe_get va l) lsl n land m))
          done
        | Expr.Shr ->
          let va = vals.(a) in
          for l = 0 to act - 1 do
            let n = geti b l in
            Array.unsafe_set vd l ((if n >= wd then 0 else (Array.unsafe_get va l) lsr n))
          done
        | Expr.Sra ->
          let va = vals.(a) in
          for l = 0 to act - 1 do
            let n = min (geti b l) (wd - 1) in
            Array.unsafe_set vd l (signedw wd (Array.unsafe_get va l) asr n land m)
          done
        | Expr.Eq | Expr.Ne | Expr.Ltu | Expr.Lts ->
          (* comparisons always produce a width-1 slot *)
          assert false
      end
    | O_mux (c, a, b) ->
      let wc = words.(c) in
      if isb.(dst) then
        words.(dst) <- (wc land words.(a)) lor (lnot wc land words.(b) land amask)
      else begin
        let va = vals.(a) and vb = vals.(b) and vd = vals.(dst) in
        for l = 0 to act - 1 do
          Array.unsafe_set vd l ((if (wc lsr l) land 1 <> 0 then (Array.unsafe_get va l) else (Array.unsafe_get vb l)))
        done
      end
    | O_concat (a, b) ->
      (* result width >= 2: always a wide slot *)
      let vd = vals.(dst) in
      let wb = widths.(b) in
      for l = 0 to act - 1 do
        Array.unsafe_set vd l ((geti a l lsl wb) lor geti b l)
      done
    | O_slice (a, _hi, lo) ->
      if isb.(dst) then begin
        if isb.(a) then words.(dst) <- words.(a)
        else begin
          let va = vals.(a) in
          let w = ref 0 in
          for l = 0 to act - 1 do
            w := !w lor ((((Array.unsafe_get va l) lsr lo) land 1) lsl l)
          done;
          words.(dst) <- !w
        end
      end
      else begin
        let va = vals.(a) and vd = vals.(dst) in
        let m = maskw widths.(dst) in
        for l = 0 to act - 1 do
          Array.unsafe_set vd l (((Array.unsafe_get va l) lsr lo) land m)
        done
      end
    | O_zext (a, _) ->
      (* strictly widening (same-width zext never reaches the tape) *)
      let vd = vals.(dst) in
      for l = 0 to act - 1 do
        Array.unsafe_set vd l (geti a l)
      done
    | O_sext (a, w) ->
      let vd = vals.(dst) in
      let wa = widths.(a) in
      let m = maskw w in
      for l = 0 to act - 1 do
        Array.unsafe_set vd l (signedw wa (geti a l) land m)
      done
    | O_file_read (f, a, _) ->
      let rows = ln.l_files.(f) in
      if Array.length rows = 0 then
        rerr "unbound register file %s" p.file_names.(f);
      if isb.(dst) then begin
        let w = ref 0 in
        for l = 0 to act - 1 do
          let row = Array.unsafe_get rows l in
          if Array.unsafe_get row (geti a l land (Array.length row - 1)) land 1 <> 0 then
            w := !w lor (1 lsl l)
        done;
        words.(dst) <- !w
      end
      else begin
        let vd = vals.(dst) in
        for l = 0 to act - 1 do
          let row = Array.unsafe_get rows l in
          Array.unsafe_set vd l (row.((geti a l) land (Array.length row - 1)))
        done
      end
    | O_lut (a, t) ->
      let tbl = Array.unsafe_get ln.l_tables t in
      if isb.(dst) then begin
        let w = ref 0 in
        for l = 0 to act - 1 do
          if Array.unsafe_get tbl (geti a l) <> 0 then w := !w lor (1 lsl l)
        done;
        words.(dst) <- !w
      end
      else begin
        let vd = vals.(dst) in
        for l = 0 to act - 1 do
          Array.unsafe_set vd l (Array.unsafe_get tbl (geti a l))
        done
      end
    | O_lut2 (a, b, t) ->
      let tbl = Array.unsafe_get ln.l_tables t in
      let wb = widths.(b) in
      if isb.(dst) then begin
        let w = ref 0 in
        for l = 0 to act - 1 do
          if Array.unsafe_get tbl ((geti a l lsl wb) lor geti b l) <> 0 then
            w := !w lor (1 lsl l)
        done;
        words.(dst) <- !w
      end
      else begin
        let vd = vals.(dst) in
        for l = 0 to act - 1 do
          Array.unsafe_set vd l
            (Array.unsafe_get tbl ((geti a l lsl wb) lor geti b l))
        done
      end
  done

let run_lanes ln = run_lanes_range ln 0 (Array.length ln.l_plan.tape)
let run_lanes_control ln = run_lanes_range ln 0 ln.l_plan.p_ctrl

let run_lanes_group ln g =
  let lo, hi = ln.l_plan.p_groups.(g) in
  run_lanes_range ln lo hi

let iter_op_operands op k =
  match op with
  | O_unop (_, a) | O_slice (a, _, _) | O_zext (a, _) | O_sext (a, _)
  | O_file_read (_, a, _)
  | O_lut (a, _) ->
    k a
  | O_binop (_, a, b) | O_concat (a, b) | O_lut2 (a, b, _) ->
    k a;
    k b
  | O_mux (c, a, b) ->
    k c;
    k a;
    k b

(* ------------------------------------------------------------------ *)
(* Tape optimization: fold, rewrite, kill, compact                     *)
(* ------------------------------------------------------------------ *)

let optimize_flag = Atomic.make true
let optimize_default () = Atomic.get optimize_flag
let set_optimize_default b = Atomic.set optimize_flag b

let bv_is_zero v = Bitvec.is_zero v
let bv_is_ones v = Bitvec.equal v (Bitvec.ones (Bitvec.width v))

(* Outcome of rewriting one step whose operands are already
   representative slots: a compile-time constant, an alias to an
   existing slot, or the (operand-resolved) step itself. *)
type rewrite = R_const of Bitvec.t | R_alias of int | R_keep of op

(* One fold pass: constant folding and propagation, algebraic
   identities, dead-code elimination by backward liveness, and tape
   compaction.  [optimize_remap] below runs it twice around the
   [tableify] lookup-table synthesis and does the counting. *)
let fold_remap ?keep_define p =
  let n = p.p_n_slots in
  let widths = p.p_widths in
  (* [repr.(s)]: the slot [s] evaluates to after rewriting.  Operands
     always resolve through [repr] before a step is examined, and a
     step only ever aliases to one of its resolved operands (or to a
     slot already registered as holding the same constant), so every
     representative is final by the time it is read. *)
  let repr = Array.init (max n 1) Fun.id in
  let cval : Bitvec.t option array = Array.make (max n 1) None in
  Array.iter (fun (s, v) -> cval.(s) <- Some v) p.consts;
  (* Constant slots by value: original consts first, then folded step
     destinations promoted to constants, deduplicated as they appear. *)
  let const_slot : (Bitvec.t, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (s, v) ->
      if not (Hashtbl.mem const_slot v) then Hashtbl.add const_slot v s)
    p.consts;
  let new_consts_rev = ref [] in
  let kept_rev = ref [] in
  let cv s = cval.(s) in
  let rewrite dst op =
    let w = widths.(dst) in
    match op with
    | O_unop (o, a) -> (
      match cv a with
      | Some va -> R_const (apply_unop o va)
      | None -> (
        match o with
        | (Expr.Reduce_or | Expr.Reduce_and) when widths.(a) = 1 -> R_alias a
        | _ -> R_keep op))
    | O_binop (o, a, b) -> (
      match (cv a, cv b) with
      | Some va, Some vb -> R_const (apply_binop o va vb)
      | ca, cb ->
        if a = b then
          (* hash-consing gives structurally equal subtrees one slot,
             so [x op x] is detectable as equal operand slots *)
          match o with
          | Expr.And | Expr.Or -> R_alias a
          | Expr.Xor | Expr.Sub -> R_const (Bitvec.zero w)
          | Expr.Eq -> R_const (Bitvec.of_bool true)
          | Expr.Ne | Expr.Ltu | Expr.Lts -> R_const (Bitvec.of_bool false)
          | Expr.Add | Expr.Mul | Expr.Shl | Expr.Shr | Expr.Sra -> R_keep op
        else (
          match (o, ca, cb) with
          | Expr.And, Some z, _ when bv_is_zero z -> R_const (Bitvec.zero w)
          | Expr.And, _, Some z when bv_is_zero z -> R_const (Bitvec.zero w)
          | Expr.And, Some v, _ when bv_is_ones v -> R_alias b
          | Expr.And, _, Some v when bv_is_ones v -> R_alias a
          | Expr.Or, Some v, _ when bv_is_ones v -> R_const (Bitvec.ones w)
          | Expr.Or, _, Some v when bv_is_ones v -> R_const (Bitvec.ones w)
          | Expr.Or, Some z, _ when bv_is_zero z -> R_alias b
          | Expr.Or, _, Some z when bv_is_zero z -> R_alias a
          | Expr.Xor, Some z, _ when bv_is_zero z -> R_alias b
          | Expr.Xor, _, Some z when bv_is_zero z -> R_alias a
          | Expr.Add, Some z, _ when bv_is_zero z -> R_alias b
          | Expr.Add, _, Some z when bv_is_zero z -> R_alias a
          | Expr.Sub, _, Some z when bv_is_zero z -> R_alias a
          | Expr.Mul, Some z, _ when bv_is_zero z -> R_const (Bitvec.zero w)
          | Expr.Mul, _, Some z when bv_is_zero z -> R_const (Bitvec.zero w)
          | (Expr.Shl | Expr.Shr | Expr.Sra), _, Some z when bv_is_zero z ->
            R_alias a
          | _ -> R_keep op))
    | O_mux (c, a, b) -> (
      match cv c with
      | Some vc -> R_alias (if Bitvec.to_bool vc then a else b)
      | None ->
        if a = b then R_alias a
        else (
          match (cv a, cv b) with
          | Some va, Some vb when w = 1 && bv_is_ones va && bv_is_zero vb ->
            (* mux(c, 1, 0) = c; the select is width-1 by construction *)
            R_alias c
          | _ -> R_keep op))
    | O_concat (a, b) -> (
      match (cv a, cv b) with
      | Some va, Some vb -> R_const (Bitvec.concat va vb)
      | _ -> R_keep op)
    | O_slice (a, hi, lo) -> (
      match cv a with
      | Some va -> R_const (Bitvec.slice va ~hi ~lo)
      | None -> if lo = 0 && hi = widths.(a) - 1 then R_alias a else R_keep op)
    | O_zext (a, wz) -> (
      match cv a with
      | Some va -> R_const (Bitvec.zero_extend va wz)
      | None -> if wz = widths.(a) then R_alias a else R_keep op)
    | O_sext (a, wz) -> (
      match cv a with
      | Some va -> R_const (Bitvec.sign_extend va wz)
      | None -> if wz = widths.(a) then R_alias a else R_keep op)
    (* Never folded: the read depends on the reader bound at run time.
       A dead read is still killable below — readers are pure. *)
    | O_file_read _ -> R_keep op
    | O_lut (a, t) -> (
      match cv a with
      | Some va -> R_const p.p_tables.(t).(Bitvec.to_int va)
      | None -> R_keep op)
    | O_lut2 (a, b, t) -> (
      match (cv a, cv b) with
      | Some va, Some vb ->
        R_const
          p.p_tables.(t).((Bitvec.to_int va lsl widths.(b)) lor Bitvec.to_int vb)
      | _ -> R_keep op)
  in
  Array.iter
    (fun { dst; op } ->
      let op =
        match op with
        | O_unop (o, a) -> O_unop (o, repr.(a))
        | O_binop (o, a, b) -> O_binop (o, repr.(a), repr.(b))
        | O_mux (c, a, b) -> O_mux (repr.(c), repr.(a), repr.(b))
        | O_concat (a, b) -> O_concat (repr.(a), repr.(b))
        | O_slice (a, hi, lo) -> O_slice (repr.(a), hi, lo)
        | O_zext (a, w) -> O_zext (repr.(a), w)
        | O_sext (a, w) -> O_sext (repr.(a), w)
        | O_file_read (f, a, w) -> O_file_read (f, repr.(a), w)
        | O_lut (a, t) -> O_lut (repr.(a), t)
        | O_lut2 (a, b, t) -> O_lut2 (repr.(a), repr.(b), t)
      in
      match rewrite dst op with
      | R_const v -> (
        match Hashtbl.find_opt const_slot v with
        | Some s0 -> repr.(dst) <- s0
        | None ->
          Hashtbl.add const_slot v dst;
          cval.(dst) <- Some v;
          new_consts_rev := (dst, v) :: !new_consts_rev)
      | R_alias s -> repr.(dst) <- s
      | R_keep op -> kept_rev := { dst; op } :: !kept_rev)
    p.tape;
  (* Backward liveness from the observed roots: named inputs (loaded
     by callers), named defines (readable by name), and every slot
     handed out by [root] (commit writes, snapshot cells, mispredict
     probes — anything a caller captured). *)
  let kept = Array.of_list (List.rev !kept_rev) in
  let live = Array.make (max n 1) false in
  let mark s = live.(s) <- true in
  Hashtbl.iter (fun _ (s, _) -> mark s) p.p_inputs;
  (* [keep_define] narrows the define roots: a caller that knows which
     names it will ever read back (the verification hot path reads
     only the hazard signals — everything else it consumes came from
     [root]) lets the rest of the signal forest die unless it feeds a
     surviving root.  Dropped defines disappear from the name tables,
     so a stale [define_slot]/[read_name] misses loudly instead of
     returning a dead slot. *)
  Hashtbl.iter
    (fun nm (s, _) ->
      match keep_define with
      | None -> mark repr.(s)
      | Some keep -> if keep nm then mark repr.(s))
    p.p_defines;
  Array.iter (fun s -> mark repr.(s)) p.p_roots;
  for i = Array.length kept - 1 downto 0 do
    let { dst; op } = kept.(i) in
    if live.(dst) then iter_op_operands op mark
  done;
  (* Compact: renumber live slots in allocation order (operands keep
     preceding their uses in tape order — aliases only ever point at
     resolved operands or constants, and constants are preloaded). *)
  let new_id = Array.make (max n 1) (-1) in
  let n' = ref 0 in
  for s = 0 to n - 1 do
    if live.(s) then begin
      new_id.(s) <- !n';
      incr n'
    end
  done;
  let n' = !n' in
  let widths' = Array.make (max n' 1) 0 in
  for s = 0 to n - 1 do
    if live.(s) then widths'.(new_id.(s)) <- widths.(s)
  done;
  let tape' =
    Array.of_list
      (List.filter_map
         (fun { dst; op } ->
           if not live.(dst) then None
           else
             let f s = new_id.(s) in
             Some
               {
                 dst = f dst;
                 op =
                   (match op with
                   | O_unop (o, a) -> O_unop (o, f a)
                   | O_binop (o, a, b) -> O_binop (o, f a, f b)
                   | O_mux (c, a, b) -> O_mux (f c, f a, f b)
                   | O_concat (a, b) -> O_concat (f a, f b)
                   | O_slice (a, hi, lo) -> O_slice (f a, hi, lo)
                   | O_zext (a, w) -> O_zext (f a, w)
                   | O_sext (a, w) -> O_sext (f a, w)
                   | O_file_read (fi, a, w) -> O_file_read (fi, f a, w)
                   | O_lut (a, t) -> O_lut (f a, t)
                   | O_lut2 (a, b, t) -> O_lut2 (f a, f b, t));
               })
         (Array.to_list kept))
  in
  let consts' =
    Array.of_list
      (List.filter_map
         (fun (s, v) -> if live.(s) then Some (new_id.(s), v) else None)
         (Array.to_list p.consts @ List.rev !new_consts_rev))
  in
  let inputs' = Hashtbl.create (max 16 (Hashtbl.length p.p_inputs)) in
  Hashtbl.iter
    (fun nm (s, w) -> Hashtbl.replace inputs' nm (new_id.(s), w))
    p.p_inputs;
  let defines' = Hashtbl.create (max 16 (Hashtbl.length p.p_defines)) in
  Hashtbl.iter
    (fun nm (s, w) ->
      let s' = new_id.(repr.(s)) in
      if s' >= 0 then Hashtbl.replace defines' nm (s', w))
    p.p_defines;
  let names' = Array.make (max n' 1) None in
  Hashtbl.iter (fun nm (s, _) -> names'.(s) <- Some nm) inputs';
  Hashtbl.iter (fun nm (s, _) -> names'.(s) <- Some nm) defines';
  let remap = Array.init (max n 1) (fun s -> new_id.(repr.(s))) in
  ( {
      p_n_slots = n';
      p_widths = widths';
      consts = consts';
      tape = tape';
      p_inputs = inputs';
      p_defines = defines';
      p_files = p.p_files;
      file_names = p.file_names;
      file_widths = p.file_widths;
      names = names';
      p_roots = Array.map (fun s -> remap.(s)) p.p_roots;
      p_ctrl = Array.length tape';
      p_groups = [||];
      p_tables = p.p_tables;
      p_equiv = p.p_equiv;
    },
    remap )

(* ------------------------------------------------------------------ *)
(* Lookup-table synthesis                                              *)
(* ------------------------------------------------------------------ *)

(* A step's {e support} is the set of frontier slots its value depends
   on: constants contribute nothing, tableable operand steps contribute
   their own support, and everything else (inputs, file reads, wide
   steps past the limits below) contributes itself.  A cone whose
   support fits in at most two slots and [max_lut_bits] total bits is a
   pure function of a small domain — [tableify] replaces each such step
   with an [O_lut]/[O_lut2] over a table built by exhaustively
   enumerating the support and evaluating the original ops with Bitvec
   semantics, so the replacement is equivalent by construction.  The
   interior of a collapsed cone loses its consumers and dies in the
   fold pass that follows.

   Steps whose support is entirely width-1 are left alone: the lane
   engine evaluates packed bool logic with one word op per step, which
   a per-lane table walk would only slow down.  A wide support slot
   means the cone is worth collapsing for the scalar engine; the lanes
   engine still loses (measured): its per-lane loops over wide slots
   are cheaper than per-lane table-index assembly and walks, so the
   lanes tape is compiled with LUT synthesis off entirely
   ([optimize_remap ~lut:false]). *)
let max_lut_bits = 12

let tableify p =
  let n = p.p_n_slots in
  let len = Array.length p.tape in
  if len = 0 then p
  else begin
    let widths = p.p_widths in
    let is_const = Array.make (max n 1) false in
    Array.iter (fun (s, _) -> is_const.(s) <- true) p.consts;
    let step_of = Array.make (max n 1) (-1) in
    Array.iteri (fun i { dst; _ } -> step_of.(dst) <- i) p.tape;
    (* [supp.(i)]: sorted support slots of tableable step [i] *)
    let supp : int list option array = Array.make len None in
    let rec union a b =
      match (a, b) with
      | [], l | l, [] -> l
      | x :: xs, y :: ys ->
        if x = y then x :: union xs ys
        else if x < y then x :: union xs b
        else y :: union a ys
    in
    let contrib s =
      if is_const.(s) then []
      else
        let i = step_of.(s) in
        if i >= 0 then (match supp.(i) with Some l -> l | None -> [ s ])
        else [ s ]
    in
    for i = 0 to len - 1 do
      let { op; _ } = p.tape.(i) in
      match op with
      | O_file_read _ | O_lut _ | O_lut2 _ -> ()
      | _ ->
        let s = ref [] in
        iter_op_operands op (fun a -> s := union !s (contrib a));
        let sup = !s in
        let bits = List.fold_left (fun acc a -> acc + widths.(a)) 0 sup in
        (match sup with
        | [ _ ] | [ _; _ ] when bits <= max_lut_bits -> supp.(i) <- Some sup
        | _ -> ())
    done;
    (* Group the replacement candidates by exact support so one
       enumeration sweep fills every table keyed on the same slots. *)
    let groups : (int list, int list ref) Hashtbl.t = Hashtbl.create 16 in
    for i = 0 to len - 1 do
      match supp.(i) with
      | Some sup when List.exists (fun a -> widths.(a) > 1) sup -> (
        match Hashtbl.find_opt groups sup with
        | Some r -> r := i :: !r
        | None -> Hashtbl.add groups sup (ref [ i ]))
      | _ -> ()
    done;
    if Hashtbl.length groups = 0 then p
    else begin
      let scratch = Array.make (max n 1) (Bitvec.zero 1) in
      Array.iter (fun (s, v) -> scratch.(s) <- v) p.consts;
      let eval_step { dst; op } =
        scratch.(dst) <-
          (match op with
          | O_unop (o, a) -> apply_unop o scratch.(a)
          | O_binop (o, a, b) -> apply_binop o scratch.(a) scratch.(b)
          | O_mux (c, a, b) ->
            if Bitvec.to_bool scratch.(c) then scratch.(a) else scratch.(b)
          | O_concat (a, b) -> Bitvec.concat scratch.(a) scratch.(b)
          | O_slice (a, hi, lo) -> Bitvec.slice scratch.(a) ~hi ~lo
          | O_zext (a, w) -> Bitvec.zero_extend scratch.(a) w
          | O_sext (a, w) -> Bitvec.sign_extend scratch.(a) w
          | O_file_read _ | O_lut _ | O_lut2 _ -> assert false)
      in
      let tape' = Array.copy p.tape in
      let tables_rev = ref [] in
      let n_tables = ref (Array.length p.p_tables) in
      let keys =
        List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) groups [])
      in
      List.iter
        (fun sup ->
          let members = List.rev !(Hashtbl.find groups sup) in
          (* every tableable step supported by a subset of [sup], in
             tape order: evaluating these covers each member's cone
             (operands are consts, slots of [sup], or earlier steps of
             this very set) *)
          let cone = ref [] in
          for i = len - 1 downto 0 do
            match supp.(i) with
            | Some s' when List.for_all (fun a -> List.mem a sup) s' ->
              cone := i :: !cone
            | _ -> ()
          done;
          let cone = !cone in
          let bits = List.fold_left (fun acc a -> acc + widths.(a)) 0 sup in
          let size = 1 lsl bits in
          let mtbl =
            List.map (fun i -> (i, Array.make size (Bitvec.zero 1))) members
          in
          for idx = 0 to size - 1 do
            (match sup with
            | [ a ] -> scratch.(a) <- Bitvec.make ~width:widths.(a) idx
            | [ a; b ] ->
              let wb = widths.(b) in
              scratch.(a) <- Bitvec.make ~width:widths.(a) (idx lsr wb);
              scratch.(b) <- Bitvec.make ~width:wb (idx land ((1 lsl wb) - 1))
            | _ -> assert false);
            List.iter (fun i -> eval_step p.tape.(i)) cone;
            List.iter
              (fun (i, tbl) -> tbl.(idx) <- scratch.(p.tape.(i).dst))
              mtbl
          done;
          List.iter
            (fun (i, tbl) ->
              let t = !n_tables in
              incr n_tables;
              tables_rev := tbl :: !tables_rev;
              let op =
                match sup with
                | [ a ] -> O_lut (a, t)
                | [ a; b ] -> O_lut2 (a, b, t)
                | _ -> assert false
              in
              tape'.(i) <- { tape'.(i) with op })
            mtbl)
        keys;
      {
        p with
        tape = tape';
        p_tables =
          Array.append p.p_tables (Array.of_list (List.rev !tables_rev));
      }
    end
  end

(* Drop the tables of luts that did not survive (cone interiors killed
   by the fold after [tableify]), renumbering the survivors. *)
let prune_tables p =
  let nt = Array.length p.p_tables in
  if nt = 0 then p
  else begin
    let used = Array.make nt false in
    Array.iter
      (fun { op; _ } ->
        match op with
        | O_lut (_, t) | O_lut2 (_, _, t) -> used.(t) <- true
        | _ -> ())
      p.tape;
    let new_t = Array.make nt (-1) in
    let cnt = ref 0 in
    for t = 0 to nt - 1 do
      if used.(t) then begin
        new_t.(t) <- !cnt;
        incr cnt
      end
    done;
    if !cnt = nt then p
    else begin
      let tables = Array.make !cnt [||] in
      for t = 0 to nt - 1 do
        if used.(t) then tables.(new_t.(t)) <- p.p_tables.(t)
      done;
      let tape =
        Array.map
          (fun ({ op; _ } as st) ->
            match op with
            | O_lut (a, t) -> { st with op = O_lut (a, new_t.(t)) }
            | O_lut2 (a, b, t) -> { st with op = O_lut2 (a, b, new_t.(t)) }
            | _ -> st)
          p.tape
      in
      { p with tape; p_tables = tables }
    end
  end

let optimize_remap ?(count = true) ?keep_define ?(lut = true) p =
  let ops0 = Array.length p.tape and slots0 = p.p_n_slots in
  let p1, r1 = fold_remap ?keep_define p in
  (* Iterate LUT synthesis to a fixpoint (bounded): each round's table
     outputs become frontier slots the next round can fold cones over,
     so a deep cone collapses through successive 2-input tables.  A
     round that stops shrinking the tape has nothing left to offer.
     [lut = false] stops after the fold: the caller wants the variant
     for an engine whose cost model table walks don't fit (the lanes
     engine evaluates packed boolean logic at one word op per step,
     and its per-lane loops over wide slots beat per-lane table
     walks — both measured on the dlx tape). *)
  let p2 = ref p1 and r2 = ref (Array.init (max p1.p_n_slots 1) Fun.id) in
  (let rounds = ref 0 and shrinking = ref lut in
   while !shrinking && !rounds < 4 do
     incr rounds;
     let before = Array.length !p2.tape in
     let p', r' = fold_remap (tableify !p2) in
     let prev = !r2 in
     p2 := p';
     r2 :=
       Array.map (fun m -> if m < 0 then -1 else r'.(m)) prev;
     shrinking := Array.length p'.tape < before
   done);
  let p2 = prune_tables !p2 and r2 = !r2 in
  let remap =
    Array.init (max slots0 1) (fun s ->
        let m = r1.(s) in
        if m < 0 then -1 else r2.(m))
  in
  if count then begin
    Obs.Counters.add Obs.Counters.Plan_ops_folded
      (ops0 - Array.length p2.tape);
    Obs.Counters.add Obs.Counters.Slots_killed (slots0 - p2.p_n_slots)
  end;
  (p2, remap)

let optimize ?count ?keep_define ?lut p =
  fst (optimize_remap ?count ?keep_define ?lut p)

let with_work_equiv ~equiv p = { p with p_equiv = Some equiv }
let work_equiv p = match p.p_equiv with Some e -> e | None -> p

(* ------------------------------------------------------------------ *)
(* Tape segmentation: control prefix + on-demand groups                *)
(* ------------------------------------------------------------------ *)

let n_ctrl_instrs p = p.p_ctrl
let n_groups p = Array.length p.p_groups

let group_instrs p g =
  let lo, hi = p.p_groups.(g) in
  hi - lo

let is_segmented p = Array.length p.p_groups > 0

let segment ?(ctrl_roots = [||]) p ~groups =
  let groups = Array.of_list groups in
  let ng = Array.length groups in
  if ng = 0 then p
  else if ng > 62 then
    invalid_arg (Printf.sprintf "Plan.segment: %d groups (max 62)" ng)
  else begin
    let len = Array.length p.tape in
    (* slot -> tape index of its defining step (-1: const or input) *)
    let step_of = Array.make (max p.p_n_slots 1) (-1) in
    Array.iteri (fun i { dst; _ } -> step_of.(dst) <- i) p.tape;
    (* [need.(i)]: bitmask of the groups whose root slots transitively
       read step [i]. *)
    let need = Array.make (max len 1) 0 in
    Array.iteri
      (fun g roots ->
        let bit = 1 lsl g in
        let stack = ref [] in
        let push s =
          let i = step_of.(s) in
          if i >= 0 && need.(i) land bit = 0 then begin
            need.(i) <- need.(i) lor bit;
            stack := i :: !stack
          end
        in
        Array.iter push roots;
        let rec drain () =
          match !stack with
          | [] -> ()
          | i :: tl ->
            stack := tl;
            iter_op_operands p.tape.(i).op push;
            drain ()
        in
        drain ())
      groups;
    (* Control membership: explicit control roots (slots the engine
       reads unconditionally every cycle), every named define (reachable
       through [read_name] / [define_slot] at any time), every step no
       group claims, and every step two or more groups share.  Control
       runs before any group, so membership propagates to operands — the
       single descending sweep suffices because the tape is
       topologically ordered (operands always sit at lower indices). *)
    let ctrl = Array.make (max len 1) false in
    let mark_ctrl s =
      let i = step_of.(s) in
      if i >= 0 then ctrl.(i) <- true
    in
    Array.iter mark_ctrl ctrl_roots;
    Hashtbl.iter (fun _ (s, _) -> mark_ctrl s) p.p_defines;
    for i = 0 to len - 1 do
      let m = need.(i) in
      if m = 0 || m land (m - 1) <> 0 then ctrl.(i) <- true
    done;
    for i = len - 1 downto 0 do
      if ctrl.(i) then iter_op_operands p.tape.(i).op mark_ctrl
    done;
    (* Stable reorder: control prefix, then each group's steps in
       original (hence still topological) order.  Slots are NOT
       renumbered — only the tape order changes. *)
    let bucket i =
      if ctrl.(i) then 0
      else begin
        (* exactly one bit set: its group, shifted past control *)
        let m = need.(i) in
        let rec log2 m acc = if m = 1 then acc else log2 (m lsr 1) (acc + 1) in
        1 + log2 m 0
      end
    in
    let order = Array.init len Fun.id in
    (* counting sort by bucket keeps the within-bucket order stable *)
    let counts = Array.make (ng + 1) 0 in
    Array.iter (fun i -> counts.(bucket i) <- counts.(bucket i) + 1) order;
    let starts = Array.make (ng + 1) 0 in
    for b = 1 to ng do
      starts.(b) <- starts.(b - 1) + counts.(b - 1)
    done;
    let bounds = Array.init ng (fun g -> (starts.(g + 1), starts.(g + 1) + counts.(g + 1))) in
    let tape' = Array.make len { dst = 0; op = O_zext (0, 1) } in
    let cursor = Array.copy starts in
    Array.iter
      (fun i ->
        let b = bucket i in
        tape'.(cursor.(b)) <- p.tape.(i);
        cursor.(b) <- cursor.(b) + 1)
      order;
    { p with tape = tape'; p_ctrl = counts.(0); p_groups = bounds }
  end

let pp ppf p =
  let slot ppf s =
    match p.names.(s) with
    | Some n -> Format.fprintf ppf "s%d{%s}" s n
    | None -> Format.fprintf ppf "s%d" s
  in
  let unop = function
    | Expr.Not -> "not"
    | Expr.Neg -> "neg"
    | Expr.Reduce_or -> "reduce_or"
    | Expr.Reduce_and -> "reduce_and"
  in
  let binop = function
    | Expr.Add -> "add"
    | Expr.Sub -> "sub"
    | Expr.Mul -> "mul"
    | Expr.And -> "and"
    | Expr.Or -> "or"
    | Expr.Xor -> "xor"
    | Expr.Eq -> "eq"
    | Expr.Ne -> "ne"
    | Expr.Ltu -> "ltu"
    | Expr.Lts -> "lts"
    | Expr.Shl -> "shl"
    | Expr.Shr -> "shr"
    | Expr.Sra -> "sra"
  in
  Format.fprintf ppf "plan: %d slots, %d consts, %d instrs@." p.p_n_slots
    (Array.length p.consts) (Array.length p.tape);
  Array.iter
    (fun (s, v) -> Format.fprintf ppf "%a = const %a@." slot s Bitvec.pp v)
    p.consts;
  Array.iter
    (fun { dst; op } ->
      Format.fprintf ppf "%a:%d = " slot dst p.p_widths.(dst);
      (match op with
      | O_unop (o, a) -> Format.fprintf ppf "%s %a" (unop o) slot a
      | O_binop (o, a, b) ->
        Format.fprintf ppf "%s %a %a" (binop o) slot a slot b
      | O_mux (c, a, b) ->
        Format.fprintf ppf "mux %a %a %a" slot c slot a slot b
      | O_concat (a, b) -> Format.fprintf ppf "concat %a %a" slot a slot b
      | O_slice (a, hi, lo) ->
        Format.fprintf ppf "slice %a [%d:%d]" slot a hi lo
      | O_zext (a, w) -> Format.fprintf ppf "zext %a %d" slot a w
      | O_sext (a, w) -> Format.fprintf ppf "sext %a %d" slot a w
      | O_file_read (f, a, w) ->
        Format.fprintf ppf "file_read %s[%a] %d" p.file_names.(f) slot a w
      | O_lut (a, t) ->
        Format.fprintf ppf "lut t%d[%a] (%d entries)" t slot a
          (Array.length p.p_tables.(t))
      | O_lut2 (a, b, t) ->
        Format.fprintf ppf "lut2 t%d[%a,%a] (%d entries)" t slot a slot b
          (Array.length p.p_tables.(t)));
      Format.fprintf ppf "@.")
    p.tape

let stats p =
  let tbl = Hashtbl.create 16 in
  let bump k =
    Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  in
  Array.iter
    (fun { op; _ } ->
      bump
        (match op with
        | O_unop (o, _) -> (
          match o with
          | Expr.Not -> "unop_not"
          | Expr.Neg -> "unop_neg"
          | Expr.Reduce_or -> "unop_reduce_or"
          | Expr.Reduce_and -> "unop_reduce_and")
        | O_binop (o, _, _) -> (
          match o with
          | Expr.Add -> "binop_add"
          | Expr.Sub -> "binop_sub"
          | Expr.Mul -> "binop_mul"
          | Expr.And -> "binop_and"
          | Expr.Or -> "binop_or"
          | Expr.Xor -> "binop_xor"
          | Expr.Eq -> "binop_eq"
          | Expr.Ne -> "binop_ne"
          | Expr.Ltu -> "binop_ltu"
          | Expr.Lts -> "binop_lts"
          | Expr.Shl -> "binop_shl"
          | Expr.Shr -> "binop_shr"
          | Expr.Sra -> "binop_sra")
        | O_mux _ -> "mux"
        | O_concat _ -> "concat"
        | O_slice _ -> "slice"
        | O_zext _ -> "zext"
        | O_sext _ -> "sext"
        | O_file_read _ -> "file_read"
        | O_lut _ -> "lut"
        | O_lut2 _ -> "lut2"))
    p.tape;
  let ops =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  ("slots", p.p_n_slots)
  :: ("consts", Array.length p.consts)
  :: ("instrs", Array.length p.tape)
  :: ("tables", Array.length p.p_tables)
  :: ops
