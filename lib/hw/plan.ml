exception Compile_error of string
exception Run_error of string

let cerr fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt
let rerr fmt = Format.kasprintf (fun s -> raise (Run_error s)) fmt

(* One tape instruction; [dst] is the slot written. *)
type op =
  | O_unop of Expr.unop * int
  | O_binop of Expr.binop * int * int
  | O_mux of int * int * int
  | O_concat of int * int
  | O_slice of int * int * int
  | O_zext of int * int
  | O_sext of int * int
  | O_file_read of int * int * int  (* file index, addr slot, data width *)

type step = { dst : int; op : op }

(* Hash-consing key: structure plus child slots.  Two syntactically
   different subtrees that compile to the same key share a slot. *)
type key =
  | K_const of Bitvec.t
  | K_unop of Expr.unop * int
  | K_binop of Expr.binop * int * int
  | K_mux of int * int * int
  | K_concat of int * int
  | K_slice of int * int * int
  | K_zext of int * int
  | K_sext of int * int
  | K_file_read of int * int

type builder = {
  auto : bool;
  mutable n_slots : int;
  mutable widths : int array;  (* slot -> width, grown on demand *)
  mutable consts_rev : (int * Bitvec.t) list;
  mutable tape_rev : step list;
  b_inputs : (string, int * int) Hashtbl.t;   (* name -> slot, width *)
  b_defines : (string, int * int) Hashtbl.t;  (* name -> slot, width *)
  b_files : (string, int * int) Hashtbl.t;    (* name -> index, width *)
  mutable n_files : int;
  cse : (key, int) Hashtbl.t;
  mutable built : bool;
}

type t = {
  p_n_slots : int;
  p_widths : int array;
  consts : (int * Bitvec.t) array;
  tape : step array;
  p_inputs : (string, int * int) Hashtbl.t;
  p_defines : (string, int * int) Hashtbl.t;
  p_files : (string, int * int) Hashtbl.t;
  file_names : string array;  (* index -> name, for errors *)
  file_widths : int array;
  names : string option array;  (* slot -> name view *)
}

type instance = {
  plan : t;
  slots : Bitvec.t array;
  files : (Bitvec.t -> Bitvec.t) array;
}

let alloc b w =
  let s = b.n_slots in
  b.n_slots <- s + 1;
  let cap = Array.length b.widths in
  if s >= cap then begin
    let widths = Array.make (max 16 (2 * cap)) 0 in
    Array.blit b.widths 0 widths 0 cap;
    b.widths <- widths
  end;
  b.widths.(s) <- w;
  s

let width_ok w = w >= 1 && w <= Bitvec.max_width

let add_input b name w =
  if not (width_ok w) then cerr "input %s: width %d" name w;
  match Hashtbl.find_opt b.b_inputs name with
  | Some (s, w') ->
    if w' <> w then
      cerr "input %s: declared width %d, expression expects %d" name w' w;
    s
  | None ->
    let s = alloc b w in
    Hashtbl.replace b.b_inputs name (s, w);
    s

let add_file b name w =
  if not (width_ok w) then cerr "file %s: width %d" name w;
  match Hashtbl.find_opt b.b_files name with
  | Some (i, w') ->
    if w' <> w then
      cerr "file %s: declared width %d, expression expects %d" name w' w;
    i
  | None ->
    if not b.auto then cerr "unknown register file %s" name;
    let i = b.n_files in
    b.n_files <- i + 1;
    Hashtbl.replace b.b_files name (i, w);
    i

let create ?(auto = false) ?(inputs = []) ?(files = []) () =
  let b =
    {
      auto;
      n_slots = 0;
      widths = Array.make 64 0;
      consts_rev = [];
      tape_rev = [];
      b_inputs = Hashtbl.create 64;
      b_defines = Hashtbl.create 64;
      b_files = Hashtbl.create 4;
      n_files = 0;
      cse = Hashtbl.create 256;
      built = false;
    }
  in
  List.iter (fun (n, w) -> ignore (add_input b n w)) inputs;
  List.iter
    (fun (n, w) ->
      if not (width_ok w) then cerr "file %s: width %d" n w;
      if not (Hashtbl.mem b.b_files n) then begin
        Hashtbl.replace b.b_files n (b.n_files, w);
        b.n_files <- b.n_files + 1
      end)
    files;
  b

let intern b key w op =
  match Hashtbl.find_opt b.cse key with
  | Some s -> s
  | None ->
    let s = alloc b w in
    Hashtbl.replace b.cse key s;
    b.tape_rev <- { dst = s; op } :: b.tape_rev;
    s

let intern_const b v =
  let key = K_const v in
  match Hashtbl.find_opt b.cse key with
  | Some s -> s
  | None ->
    let s = alloc b (Bitvec.width v) in
    Hashtbl.replace b.cse key s;
    b.consts_rev <- (s, v) :: b.consts_rev;
    s

(* Compile one expression bottom-up.  Width rules mirror [Expr.width],
   but run over already-compiled child slots, so each shared node is
   checked (and compiled) exactly once. *)
let rec compile b e =
  let w s = b.widths.(s) in
  match e with
  | Expr.Const v -> intern_const b v
  | Expr.Input (name, wi) -> (
    match Hashtbl.find_opt b.b_defines name with
    | Some (s, wd) ->
      if wd <> wi then
        cerr "input %s: defined width %d, expression expects %d" name wd wi;
      s
    | None ->
      if b.auto || Hashtbl.mem b.b_inputs name then add_input b name wi
      else cerr "unknown input %s" name)
  | Expr.Unop (op, a) ->
    let sa = compile b a in
    let wr =
      match op with
      | Expr.Not | Expr.Neg -> w sa
      | Expr.Reduce_or | Expr.Reduce_and -> 1
    in
    intern b (K_unop (op, sa)) wr (O_unop (op, sa))
  | Expr.Binop (op, a, bb) ->
    let sa = compile b a in
    let sb = compile b bb in
    let wa = w sa and wb = w sb in
    let wr =
      match op with
      | Expr.Add | Expr.Sub | Expr.Mul | Expr.And | Expr.Or | Expr.Xor ->
        if wa <> wb then cerr "binop operand widths %d vs %d" wa wb;
        wa
      | Expr.Eq | Expr.Ne | Expr.Ltu | Expr.Lts ->
        if wa <> wb then cerr "comparison operand widths %d vs %d" wa wb;
        1
      | Expr.Shl | Expr.Shr | Expr.Sra -> wa
    in
    intern b (K_binop (op, sa, sb)) wr (O_binop (op, sa, sb))
  | Expr.Mux (s, a, bb) ->
    let ss = compile b s in
    let sa = compile b a in
    let sb = compile b bb in
    if w ss <> 1 then cerr "mux select width %d (want 1)" (w ss);
    if w sa <> w sb then cerr "mux branch widths %d vs %d" (w sa) (w sb);
    intern b (K_mux (ss, sa, sb)) (w sa) (O_mux (ss, sa, sb))
  | Expr.Concat (hi, lo) ->
    let sh = compile b hi in
    let sl = compile b lo in
    let wr = w sh + w sl in
    if wr > Bitvec.max_width then cerr "concat result width %d too large" wr;
    intern b (K_concat (sh, sl)) wr (O_concat (sh, sl))
  | Expr.Slice (a, hi, lo) ->
    let sa = compile b a in
    let wa = w sa in
    if lo < 0 || hi < lo || hi >= wa then
      cerr "slice [%d:%d] of %d-bit expression" hi lo wa;
    intern b (K_slice (sa, hi, lo)) (hi - lo + 1) (O_slice (sa, hi, lo))
  | Expr.Zext (a, wz) ->
    let sa = compile b a in
    let wa = w sa in
    if wz < wa || wz > Bitvec.max_width then cerr "extend %d-bit to %d bits" wa wz;
    if wz = wa then sa else intern b (K_zext (sa, wz)) wz (O_zext (sa, wz))
  | Expr.Sext (a, wz) ->
    let sa = compile b a in
    let wa = w sa in
    if wz < wa || wz > Bitvec.max_width then cerr "extend %d-bit to %d bits" wa wz;
    if wz = wa then sa else intern b (K_sext (sa, wz)) wz (O_sext (sa, wz))
  | Expr.File_read { file; data_width; addr } ->
    let sa = compile b addr in
    let fi = add_file b file data_width in
    intern b (K_file_read (fi, sa)) data_width (O_file_read (fi, sa, data_width))

let check_built b = if b.built then cerr "builder already built"

let root b e =
  check_built b;
  compile b e

let define b name e =
  check_built b;
  if Hashtbl.mem b.b_defines name then cerr "duplicate definition of %s" name;
  if Hashtbl.mem b.b_inputs name then
    cerr "definition of %s collides with a declared input" name;
  let s = compile b e in
  Hashtbl.replace b.b_defines name (s, b.widths.(s));
  s

let input b name w =
  check_built b;
  match Hashtbl.find_opt b.b_defines name with
  | Some _ -> cerr "input %s collides with a definition" name
  | None -> add_input b name w

let build b =
  check_built b;
  b.built <- true;
  let file_names = Array.make b.n_files "" in
  let file_widths = Array.make b.n_files 0 in
  Hashtbl.iter
    (fun n (i, w) ->
      file_names.(i) <- n;
      file_widths.(i) <- w)
    b.b_files;
  let names = Array.make (max b.n_slots 1) None in
  Hashtbl.iter (fun n (s, _) -> names.(s) <- Some n) b.b_inputs;
  Hashtbl.iter (fun n (s, _) -> names.(s) <- Some n) b.b_defines;
  {
    p_n_slots = b.n_slots;
    p_widths = Array.sub b.widths 0 (max b.n_slots 1);
    consts = Array.of_list (List.rev b.consts_rev);
    tape = Array.of_list (List.rev b.tape_rev);
    p_inputs = b.b_inputs;
    p_defines = b.b_defines;
    p_files = b.b_files;
    file_names;
    file_widths;
    names;
  }

let n_slots p = p.p_n_slots
let n_instrs p = Array.length p.tape
let input_slot p n = Option.map fst (Hashtbl.find_opt p.p_inputs n)
let define_slot p n = Option.map fst (Hashtbl.find_opt p.p_defines n)

let slot_of_name p n =
  match define_slot p n with Some _ as s -> s | None -> input_slot p n

let iter_inputs p f =
  Hashtbl.iter (fun n (slot, width) -> f n ~slot ~width) p.p_inputs

let iter_files p f =
  Hashtbl.iter (fun n (index, width) -> f n ~index ~width) p.p_files

let slot_name p s =
  if s >= 0 && s < Array.length p.names then p.names.(s) else None

let unbound_reader p i _ = rerr "unbound register file %s" p.file_names.(i)

let instance p =
  let slots = Array.make (max p.p_n_slots 1) (Bitvec.zero 1) in
  Array.iter (fun (s, v) -> slots.(s) <- v) p.consts;
  let files =
    Array.init (Array.length p.file_names) (fun i -> unbound_reader p i)
  in
  { plan = p; slots; files }

let reset inst =
  let p = inst.plan in
  Array.fill inst.slots 0 (Array.length inst.slots) (Bitvec.zero 1);
  Array.iter (fun (s, v) -> inst.slots.(s) <- v) p.consts;
  for i = 0 to Array.length inst.files - 1 do
    inst.files.(i) <- unbound_reader p i
  done

let bind_file inst name reader =
  match Hashtbl.find_opt inst.plan.p_files name with
  | None -> ()
  | Some (i, _) -> inst.files.(i) <- reader

let set inst s v =
  let w = inst.plan.p_widths.(s) in
  if Bitvec.width v <> w then
    rerr "input %s: stored width %d, expression expects %d"
      (match slot_name inst.plan s with Some n -> n | None -> string_of_int s)
      (Bitvec.width v) w;
  inst.slots.(s) <- v

let apply_unop op a =
  match op with
  | Expr.Not -> Bitvec.lognot a
  | Expr.Neg -> Bitvec.neg a
  | Expr.Reduce_or -> Bitvec.of_bool (not (Bitvec.is_zero a))
  | Expr.Reduce_and ->
    Bitvec.of_bool (Bitvec.equal a (Bitvec.ones (Bitvec.width a)))

let apply_binop op a b =
  match op with
  | Expr.Add -> Bitvec.add a b
  | Expr.Sub -> Bitvec.sub a b
  | Expr.Mul -> Bitvec.mul a b
  | Expr.And -> Bitvec.logand a b
  | Expr.Or -> Bitvec.logor a b
  | Expr.Xor -> Bitvec.logxor a b
  | Expr.Eq -> Bitvec.eq a b
  | Expr.Ne -> Bitvec.lognot (Bitvec.eq a b)
  | Expr.Ltu -> Bitvec.lt_unsigned a b
  | Expr.Lts -> Bitvec.lt_signed a b
  | Expr.Shl -> Bitvec.shift_left a (Bitvec.to_int b)
  | Expr.Shr -> Bitvec.shift_right_logical a (Bitvec.to_int b)
  | Expr.Sra -> Bitvec.shift_right_arith a (Bitvec.to_int b)

let run inst =
  let s = inst.slots in
  let tape = inst.plan.tape in
  Obs.Counters.bump Obs.Counters.Plan_runs;
  Obs.Counters.add Obs.Counters.Plan_ops (Array.length tape);
  for i = 0 to Array.length tape - 1 do
    let { dst; op } = Array.unsafe_get tape i in
    let v =
      match op with
      | O_unop (o, a) -> apply_unop o s.(a)
      | O_binop (o, a, b) -> apply_binop o s.(a) s.(b)
      | O_mux (c, a, b) -> if Bitvec.to_bool s.(c) then s.(a) else s.(b)
      | O_concat (a, b) -> Bitvec.concat s.(a) s.(b)
      | O_slice (a, hi, lo) -> Bitvec.slice s.(a) ~hi ~lo
      | O_zext (a, w) -> Bitvec.zero_extend s.(a) w
      | O_sext (a, w) -> Bitvec.sign_extend s.(a) w
      | O_file_read (f, a, w) ->
        let v = inst.files.(f) s.(a) in
        if Bitvec.width v <> w then
          rerr "file %s: stored width %d, expression expects %d"
            inst.plan.file_names.(f) (Bitvec.width v) w;
        v
    in
    s.(dst) <- v
  done

let get inst slot = inst.slots.(slot)
let get_bool inst slot = Bitvec.to_bool inst.slots.(slot)

let read_name inst name =
  match slot_of_name inst.plan name with
  | Some s -> Some inst.slots.(s)
  | None -> None

let slot_width p s = p.p_widths.(s)

(* ------------------------------------------------------------------ *)
(* Bit-parallel lane evaluation                                        *)
(* ------------------------------------------------------------------ *)

(* A lane instance evaluates the same tape for up to [l_cap] programs
   at once.  Width-1 slots live as one packed word per slot (bit [l] =
   lane [l]); wider slots as one raw int per lane per slot.  Register
   files are one int array per lane, bound by the lane state.

   Garbage discipline: bits [l_active ..] of a packed word, and
   entries [l_active ..] of a per-lane array, are unspecified.  Word
   ops run over the whole word and only mask where an [lnot] would
   otherwise smear ones upward; per-lane ops only visit active lanes.

   [run_lanes] deliberately counts nothing: callers account the
   equivalent scalar work through an [Obs.Counters.ledger] so the
   WORK totals stay bit-identical to the scalar batched path. *)
type lanes = {
  l_plan : t;
  l_cap : int;
  l_all : int;  (* mask_of_count l_cap *)
  mutable l_active : int;
  mutable l_mask : int;  (* mask_of_count l_active *)
  l_bool : bool array;  (* slot -> width = 1 *)
  l_words : int array;  (* packed word, one per width-1 slot *)
  l_vals : int array array;  (* lane-indexed ints, one row per wide slot *)
  l_files : int array array array;  (* file -> lane -> contents; [||] unbound *)
}

let lanes ?(capacity = Lanes.max_lanes) p =
  if capacity < 1 || capacity > Lanes.max_lanes then
    invalid_arg (Printf.sprintf "Plan.lanes: capacity %d" capacity);
  let n = max p.p_n_slots 1 in
  let l_bool = Array.init n (fun s -> p.p_widths.(s) = 1) in
  let ln =
    {
      l_plan = p;
      l_cap = capacity;
      l_all = Lanes.mask_of_count capacity;
      l_active = capacity;
      l_mask = Lanes.mask_of_count capacity;
      l_bool;
      l_words = Array.make n 0;
      l_vals =
        Array.init n (fun s ->
            if l_bool.(s) then [||] else Array.make capacity 0);
      l_files = Array.make (Array.length p.file_names) [||];
    }
  in
  (* Constants are replicated across every lane once: no tape step
     writes a const slot, so they survive any number of runs. *)
  Array.iter
    (fun (s, v) ->
      if l_bool.(s) then
        ln.l_words.(s) <- (if Bitvec.to_bool v then ln.l_all else 0)
      else Array.fill ln.l_vals.(s) 0 capacity (Bitvec.to_int v))
    p.consts;
  ln

let lanes_plan ln = ln.l_plan
let lanes_capacity ln = ln.l_cap
let lanes_active ln = ln.l_active

let lanes_set_active ln n =
  if n < 1 || n > ln.l_cap then
    invalid_arg (Printf.sprintf "Plan.lanes_set_active: %d" n);
  ln.l_active <- n;
  ln.l_mask <- Lanes.mask_of_count n

let lanes_is_bool ln s = ln.l_bool.(s)
let lanes_word ln s = ln.l_words.(s)
let lanes_set_word ln s w = ln.l_words.(s) <- w
let lanes_ints ln s = ln.l_vals.(s)

let lanes_get ln s l =
  if ln.l_bool.(s) then (ln.l_words.(s) lsr l) land 1 else ln.l_vals.(s).(l)

let lanes_bind_file ln name rows =
  match Hashtbl.find_opt ln.l_plan.p_files name with
  | None -> ()
  | Some (i, _) -> ln.l_files.(i) <- rows

(* Raw-int mirrors of the Bitvec primitives.  These must agree with
   bitvec.ml bit for bit, including the width-62 special cases. *)
let maskw w = if w = Bitvec.max_width then max_int else (1 lsl w) - 1

let signedw w v =
  if w = Bitvec.max_width then v
  else if v land (1 lsl (w - 1)) <> 0 then v - (1 lsl w)
  else v

let run_lanes ln =
  let p = ln.l_plan in
  let words = ln.l_words and vals = ln.l_vals and isb = ln.l_bool in
  let widths = p.p_widths in
  let act = ln.l_active in
  let amask = ln.l_mask in
  let geti s l =
    if Array.unsafe_get isb s then (Array.unsafe_get words s lsr l) land 1
    else Array.unsafe_get (Array.unsafe_get vals s) l
  in
  let tape = p.tape in
  for i = 0 to Array.length tape - 1 do
    let { dst; op } = Array.unsafe_get tape i in
    match op with
    | O_unop (o, a) ->
      if isb.(dst) then begin
        if isb.(a) then
          words.(dst) <-
            (match o with
            | Expr.Not -> lnot words.(a) land amask
            | Expr.Neg | Expr.Reduce_or | Expr.Reduce_and -> words.(a))
        else begin
          (* reduction of a wide operand into a packed bit *)
          let va = vals.(a) in
          let full = maskw widths.(a) in
          let w = ref 0 in
          (match o with
          | Expr.Reduce_or ->
            for l = 0 to act - 1 do
              if (Array.unsafe_get va l) <> 0 then w := !w lor (1 lsl l)
            done
          | Expr.Reduce_and ->
            for l = 0 to act - 1 do
              if (Array.unsafe_get va l) = full then w := !w lor (1 lsl l)
            done
          | Expr.Not | Expr.Neg -> assert false);
          words.(dst) <- !w
        end
      end
      else begin
        let va = vals.(a) and vd = vals.(dst) in
        let m = maskw widths.(dst) in
        match o with
        | Expr.Not ->
          for l = 0 to act - 1 do
            Array.unsafe_set vd l (lnot (Array.unsafe_get va l) land m)
          done
        | Expr.Neg ->
          for l = 0 to act - 1 do
            Array.unsafe_set vd l (-(Array.unsafe_get va l) land m)
          done
        | Expr.Reduce_or | Expr.Reduce_and -> assert false
      end
    | O_binop (o, a, b) ->
      if isb.(dst) then begin
        if isb.(a) && isb.(b) then
          (* both operands packed: one word op serves every lane *)
          let wa = words.(a) and wb = words.(b) in
          words.(dst) <-
            (match o with
            | Expr.And | Expr.Mul -> wa land wb
            | Expr.Or -> wa lor wb
            | Expr.Xor | Expr.Add | Expr.Sub | Expr.Ne -> wa lxor wb
            | Expr.Eq -> lnot (wa lxor wb) land amask
            | Expr.Ltu -> lnot wa land wb land amask
            | Expr.Lts -> wa land lnot wb land amask
            | Expr.Shl | Expr.Shr -> wa land lnot wb land amask
            | Expr.Sra -> wa)
        else begin
          let w = ref 0 in
          (match o with
          | Expr.Eq ->
            let va = vals.(a) and vb = vals.(b) in
            for l = 0 to act - 1 do
              if (Array.unsafe_get va l) = (Array.unsafe_get vb l) then w := !w lor (1 lsl l)
            done
          | Expr.Ne ->
            let va = vals.(a) and vb = vals.(b) in
            for l = 0 to act - 1 do
              if (Array.unsafe_get va l) <> (Array.unsafe_get vb l) then w := !w lor (1 lsl l)
            done
          | Expr.Ltu ->
            (* masked values are non-negative: plain int compare *)
            let va = vals.(a) and vb = vals.(b) in
            for l = 0 to act - 1 do
              if (Array.unsafe_get va l) < (Array.unsafe_get vb l) then w := !w lor (1 lsl l)
            done
          | Expr.Lts ->
            let va = vals.(a) and vb = vals.(b) in
            let wd = widths.(a) in
            for l = 0 to act - 1 do
              if signedw wd (Array.unsafe_get va l) < signedw wd (Array.unsafe_get vb l) then
                w := !w lor (1 lsl l)
            done
          | Expr.Shl | Expr.Shr ->
            (* width-1 value, wide shift amount: survives only amt=0 *)
            let wa = words.(a) in
            for l = 0 to act - 1 do
              if geti b l = 0 then w := !w lor (wa land (1 lsl l))
            done
          | Expr.Sra ->
            (* amt clamped to width-1 = 0: identity *)
            w := words.(a)
          | Expr.Add | Expr.Sub | Expr.Mul | Expr.And | Expr.Or | Expr.Xor ->
            (* equal operand widths: both packed, handled above *)
            assert false);
          words.(dst) <- !w
        end
      end
      else begin
        let vd = vals.(dst) in
        let wd = widths.(dst) in
        let m = maskw wd in
        match o with
        | Expr.Add ->
          let va = vals.(a) and vb = vals.(b) in
          for l = 0 to act - 1 do
            Array.unsafe_set vd l (((Array.unsafe_get va l) + (Array.unsafe_get vb l)) land m)
          done
        | Expr.Sub ->
          let va = vals.(a) and vb = vals.(b) in
          for l = 0 to act - 1 do
            Array.unsafe_set vd l (((Array.unsafe_get va l) - (Array.unsafe_get vb l)) land m)
          done
        | Expr.Mul ->
          let va = vals.(a) and vb = vals.(b) in
          for l = 0 to act - 1 do
            Array.unsafe_set vd l ((Array.unsafe_get va l) * (Array.unsafe_get vb l) land m)
          done
        | Expr.And ->
          let va = vals.(a) and vb = vals.(b) in
          for l = 0 to act - 1 do
            Array.unsafe_set vd l ((Array.unsafe_get va l) land (Array.unsafe_get vb l))
          done
        | Expr.Or ->
          let va = vals.(a) and vb = vals.(b) in
          for l = 0 to act - 1 do
            Array.unsafe_set vd l ((Array.unsafe_get va l) lor (Array.unsafe_get vb l))
          done
        | Expr.Xor ->
          let va = vals.(a) and vb = vals.(b) in
          for l = 0 to act - 1 do
            Array.unsafe_set vd l ((Array.unsafe_get va l) lxor (Array.unsafe_get vb l))
          done
        | Expr.Shl ->
          let va = vals.(a) in
          for l = 0 to act - 1 do
            let n = geti b l in
            Array.unsafe_set vd l ((if n >= wd then 0 else (Array.unsafe_get va l) lsl n land m))
          done
        | Expr.Shr ->
          let va = vals.(a) in
          for l = 0 to act - 1 do
            let n = geti b l in
            Array.unsafe_set vd l ((if n >= wd then 0 else (Array.unsafe_get va l) lsr n))
          done
        | Expr.Sra ->
          let va = vals.(a) in
          for l = 0 to act - 1 do
            let n = min (geti b l) (wd - 1) in
            Array.unsafe_set vd l (signedw wd (Array.unsafe_get va l) asr n land m)
          done
        | Expr.Eq | Expr.Ne | Expr.Ltu | Expr.Lts ->
          (* comparisons always produce a width-1 slot *)
          assert false
      end
    | O_mux (c, a, b) ->
      let wc = words.(c) in
      if isb.(dst) then
        words.(dst) <- (wc land words.(a)) lor (lnot wc land words.(b) land amask)
      else begin
        let va = vals.(a) and vb = vals.(b) and vd = vals.(dst) in
        for l = 0 to act - 1 do
          Array.unsafe_set vd l ((if (wc lsr l) land 1 <> 0 then (Array.unsafe_get va l) else (Array.unsafe_get vb l)))
        done
      end
    | O_concat (a, b) ->
      (* result width >= 2: always a wide slot *)
      let vd = vals.(dst) in
      let wb = widths.(b) in
      for l = 0 to act - 1 do
        Array.unsafe_set vd l ((geti a l lsl wb) lor geti b l)
      done
    | O_slice (a, _hi, lo) ->
      if isb.(dst) then begin
        if isb.(a) then words.(dst) <- words.(a)
        else begin
          let va = vals.(a) in
          let w = ref 0 in
          for l = 0 to act - 1 do
            w := !w lor ((((Array.unsafe_get va l) lsr lo) land 1) lsl l)
          done;
          words.(dst) <- !w
        end
      end
      else begin
        let va = vals.(a) and vd = vals.(dst) in
        let m = maskw widths.(dst) in
        for l = 0 to act - 1 do
          Array.unsafe_set vd l (((Array.unsafe_get va l) lsr lo) land m)
        done
      end
    | O_zext (a, _) ->
      (* strictly widening (same-width zext never reaches the tape) *)
      let vd = vals.(dst) in
      for l = 0 to act - 1 do
        Array.unsafe_set vd l (geti a l)
      done
    | O_sext (a, w) ->
      let vd = vals.(dst) in
      let wa = widths.(a) in
      let m = maskw w in
      for l = 0 to act - 1 do
        Array.unsafe_set vd l (signedw wa (geti a l) land m)
      done
    | O_file_read (f, a, _) ->
      let rows = ln.l_files.(f) in
      if Array.length rows = 0 then
        rerr "unbound register file %s" p.file_names.(f);
      if isb.(dst) then begin
        let w = ref 0 in
        for l = 0 to act - 1 do
          let row = Array.unsafe_get rows l in
          if Array.unsafe_get row (geti a l land (Array.length row - 1)) land 1 <> 0 then
            w := !w lor (1 lsl l)
        done;
        words.(dst) <- !w
      end
      else begin
        let vd = vals.(dst) in
        for l = 0 to act - 1 do
          let row = Array.unsafe_get rows l in
          Array.unsafe_set vd l (row.((geti a l) land (Array.length row - 1)))
        done
      end
  done
