exception Compile_error of string
exception Run_error of string

let cerr fmt = Format.kasprintf (fun s -> raise (Compile_error s)) fmt
let rerr fmt = Format.kasprintf (fun s -> raise (Run_error s)) fmt

(* One tape instruction; [dst] is the slot written. *)
type op =
  | O_unop of Expr.unop * int
  | O_binop of Expr.binop * int * int
  | O_mux of int * int * int
  | O_concat of int * int
  | O_slice of int * int * int
  | O_zext of int * int
  | O_sext of int * int
  | O_file_read of int * int * int  (* file index, addr slot, data width *)

type step = { dst : int; op : op }

(* Hash-consing key: structure plus child slots.  Two syntactically
   different subtrees that compile to the same key share a slot. *)
type key =
  | K_const of Bitvec.t
  | K_unop of Expr.unop * int
  | K_binop of Expr.binop * int * int
  | K_mux of int * int * int
  | K_concat of int * int
  | K_slice of int * int * int
  | K_zext of int * int
  | K_sext of int * int
  | K_file_read of int * int

type builder = {
  auto : bool;
  mutable n_slots : int;
  mutable widths : int array;  (* slot -> width, grown on demand *)
  mutable consts_rev : (int * Bitvec.t) list;
  mutable tape_rev : step list;
  b_inputs : (string, int * int) Hashtbl.t;   (* name -> slot, width *)
  b_defines : (string, int * int) Hashtbl.t;  (* name -> slot, width *)
  b_files : (string, int * int) Hashtbl.t;    (* name -> index, width *)
  mutable n_files : int;
  cse : (key, int) Hashtbl.t;
  mutable built : bool;
}

type t = {
  p_n_slots : int;
  p_widths : int array;
  consts : (int * Bitvec.t) array;
  tape : step array;
  p_inputs : (string, int * int) Hashtbl.t;
  p_defines : (string, int * int) Hashtbl.t;
  p_files : (string, int * int) Hashtbl.t;
  file_names : string array;  (* index -> name, for errors *)
  file_widths : int array;
  names : string option array;  (* slot -> name view *)
}

type instance = {
  plan : t;
  slots : Bitvec.t array;
  files : (Bitvec.t -> Bitvec.t) array;
}

let alloc b w =
  let s = b.n_slots in
  b.n_slots <- s + 1;
  let cap = Array.length b.widths in
  if s >= cap then begin
    let widths = Array.make (max 16 (2 * cap)) 0 in
    Array.blit b.widths 0 widths 0 cap;
    b.widths <- widths
  end;
  b.widths.(s) <- w;
  s

let width_ok w = w >= 1 && w <= Bitvec.max_width

let add_input b name w =
  if not (width_ok w) then cerr "input %s: width %d" name w;
  match Hashtbl.find_opt b.b_inputs name with
  | Some (s, w') ->
    if w' <> w then
      cerr "input %s: declared width %d, expression expects %d" name w' w;
    s
  | None ->
    let s = alloc b w in
    Hashtbl.replace b.b_inputs name (s, w);
    s

let add_file b name w =
  if not (width_ok w) then cerr "file %s: width %d" name w;
  match Hashtbl.find_opt b.b_files name with
  | Some (i, w') ->
    if w' <> w then
      cerr "file %s: declared width %d, expression expects %d" name w' w;
    i
  | None ->
    if not b.auto then cerr "unknown register file %s" name;
    let i = b.n_files in
    b.n_files <- i + 1;
    Hashtbl.replace b.b_files name (i, w);
    i

let create ?(auto = false) ?(inputs = []) ?(files = []) () =
  let b =
    {
      auto;
      n_slots = 0;
      widths = Array.make 64 0;
      consts_rev = [];
      tape_rev = [];
      b_inputs = Hashtbl.create 64;
      b_defines = Hashtbl.create 64;
      b_files = Hashtbl.create 4;
      n_files = 0;
      cse = Hashtbl.create 256;
      built = false;
    }
  in
  List.iter (fun (n, w) -> ignore (add_input b n w)) inputs;
  List.iter
    (fun (n, w) ->
      if not (width_ok w) then cerr "file %s: width %d" n w;
      if not (Hashtbl.mem b.b_files n) then begin
        Hashtbl.replace b.b_files n (b.n_files, w);
        b.n_files <- b.n_files + 1
      end)
    files;
  b

let intern b key w op =
  match Hashtbl.find_opt b.cse key with
  | Some s -> s
  | None ->
    let s = alloc b w in
    Hashtbl.replace b.cse key s;
    b.tape_rev <- { dst = s; op } :: b.tape_rev;
    s

let intern_const b v =
  let key = K_const v in
  match Hashtbl.find_opt b.cse key with
  | Some s -> s
  | None ->
    let s = alloc b (Bitvec.width v) in
    Hashtbl.replace b.cse key s;
    b.consts_rev <- (s, v) :: b.consts_rev;
    s

(* Compile one expression bottom-up.  Width rules mirror [Expr.width],
   but run over already-compiled child slots, so each shared node is
   checked (and compiled) exactly once. *)
let rec compile b e =
  let w s = b.widths.(s) in
  match e with
  | Expr.Const v -> intern_const b v
  | Expr.Input (name, wi) -> (
    match Hashtbl.find_opt b.b_defines name with
    | Some (s, wd) ->
      if wd <> wi then
        cerr "input %s: defined width %d, expression expects %d" name wd wi;
      s
    | None ->
      if b.auto || Hashtbl.mem b.b_inputs name then add_input b name wi
      else cerr "unknown input %s" name)
  | Expr.Unop (op, a) ->
    let sa = compile b a in
    let wr =
      match op with
      | Expr.Not | Expr.Neg -> w sa
      | Expr.Reduce_or | Expr.Reduce_and -> 1
    in
    intern b (K_unop (op, sa)) wr (O_unop (op, sa))
  | Expr.Binop (op, a, bb) ->
    let sa = compile b a in
    let sb = compile b bb in
    let wa = w sa and wb = w sb in
    let wr =
      match op with
      | Expr.Add | Expr.Sub | Expr.Mul | Expr.And | Expr.Or | Expr.Xor ->
        if wa <> wb then cerr "binop operand widths %d vs %d" wa wb;
        wa
      | Expr.Eq | Expr.Ne | Expr.Ltu | Expr.Lts ->
        if wa <> wb then cerr "comparison operand widths %d vs %d" wa wb;
        1
      | Expr.Shl | Expr.Shr | Expr.Sra -> wa
    in
    intern b (K_binop (op, sa, sb)) wr (O_binop (op, sa, sb))
  | Expr.Mux (s, a, bb) ->
    let ss = compile b s in
    let sa = compile b a in
    let sb = compile b bb in
    if w ss <> 1 then cerr "mux select width %d (want 1)" (w ss);
    if w sa <> w sb then cerr "mux branch widths %d vs %d" (w sa) (w sb);
    intern b (K_mux (ss, sa, sb)) (w sa) (O_mux (ss, sa, sb))
  | Expr.Concat (hi, lo) ->
    let sh = compile b hi in
    let sl = compile b lo in
    let wr = w sh + w sl in
    if wr > Bitvec.max_width then cerr "concat result width %d too large" wr;
    intern b (K_concat (sh, sl)) wr (O_concat (sh, sl))
  | Expr.Slice (a, hi, lo) ->
    let sa = compile b a in
    let wa = w sa in
    if lo < 0 || hi < lo || hi >= wa then
      cerr "slice [%d:%d] of %d-bit expression" hi lo wa;
    intern b (K_slice (sa, hi, lo)) (hi - lo + 1) (O_slice (sa, hi, lo))
  | Expr.Zext (a, wz) ->
    let sa = compile b a in
    let wa = w sa in
    if wz < wa || wz > Bitvec.max_width then cerr "extend %d-bit to %d bits" wa wz;
    if wz = wa then sa else intern b (K_zext (sa, wz)) wz (O_zext (sa, wz))
  | Expr.Sext (a, wz) ->
    let sa = compile b a in
    let wa = w sa in
    if wz < wa || wz > Bitvec.max_width then cerr "extend %d-bit to %d bits" wa wz;
    if wz = wa then sa else intern b (K_sext (sa, wz)) wz (O_sext (sa, wz))
  | Expr.File_read { file; data_width; addr } ->
    let sa = compile b addr in
    let fi = add_file b file data_width in
    intern b (K_file_read (fi, sa)) data_width (O_file_read (fi, sa, data_width))

let check_built b = if b.built then cerr "builder already built"

let root b e =
  check_built b;
  compile b e

let define b name e =
  check_built b;
  if Hashtbl.mem b.b_defines name then cerr "duplicate definition of %s" name;
  if Hashtbl.mem b.b_inputs name then
    cerr "definition of %s collides with a declared input" name;
  let s = compile b e in
  Hashtbl.replace b.b_defines name (s, b.widths.(s));
  s

let input b name w =
  check_built b;
  match Hashtbl.find_opt b.b_defines name with
  | Some _ -> cerr "input %s collides with a definition" name
  | None -> add_input b name w

let build b =
  check_built b;
  b.built <- true;
  let file_names = Array.make b.n_files "" in
  let file_widths = Array.make b.n_files 0 in
  Hashtbl.iter
    (fun n (i, w) ->
      file_names.(i) <- n;
      file_widths.(i) <- w)
    b.b_files;
  let names = Array.make (max b.n_slots 1) None in
  Hashtbl.iter (fun n (s, _) -> names.(s) <- Some n) b.b_inputs;
  Hashtbl.iter (fun n (s, _) -> names.(s) <- Some n) b.b_defines;
  {
    p_n_slots = b.n_slots;
    p_widths = Array.sub b.widths 0 (max b.n_slots 1);
    consts = Array.of_list (List.rev b.consts_rev);
    tape = Array.of_list (List.rev b.tape_rev);
    p_inputs = b.b_inputs;
    p_defines = b.b_defines;
    p_files = b.b_files;
    file_names;
    file_widths;
    names;
  }

let n_slots p = p.p_n_slots
let n_instrs p = Array.length p.tape
let input_slot p n = Option.map fst (Hashtbl.find_opt p.p_inputs n)
let define_slot p n = Option.map fst (Hashtbl.find_opt p.p_defines n)

let slot_of_name p n =
  match define_slot p n with Some _ as s -> s | None -> input_slot p n

let iter_inputs p f =
  Hashtbl.iter (fun n (slot, width) -> f n ~slot ~width) p.p_inputs

let iter_files p f =
  Hashtbl.iter (fun n (index, width) -> f n ~index ~width) p.p_files

let slot_name p s =
  if s >= 0 && s < Array.length p.names then p.names.(s) else None

let unbound_reader p i _ = rerr "unbound register file %s" p.file_names.(i)

let instance p =
  let slots = Array.make (max p.p_n_slots 1) (Bitvec.zero 1) in
  Array.iter (fun (s, v) -> slots.(s) <- v) p.consts;
  let files =
    Array.init (Array.length p.file_names) (fun i -> unbound_reader p i)
  in
  { plan = p; slots; files }

let reset inst =
  let p = inst.plan in
  Array.fill inst.slots 0 (Array.length inst.slots) (Bitvec.zero 1);
  Array.iter (fun (s, v) -> inst.slots.(s) <- v) p.consts;
  for i = 0 to Array.length inst.files - 1 do
    inst.files.(i) <- unbound_reader p i
  done

let bind_file inst name reader =
  match Hashtbl.find_opt inst.plan.p_files name with
  | None -> ()
  | Some (i, _) -> inst.files.(i) <- reader

let set inst s v =
  let w = inst.plan.p_widths.(s) in
  if Bitvec.width v <> w then
    rerr "input %s: stored width %d, expression expects %d"
      (match slot_name inst.plan s with Some n -> n | None -> string_of_int s)
      (Bitvec.width v) w;
  inst.slots.(s) <- v

let apply_unop op a =
  match op with
  | Expr.Not -> Bitvec.lognot a
  | Expr.Neg -> Bitvec.neg a
  | Expr.Reduce_or -> Bitvec.of_bool (not (Bitvec.is_zero a))
  | Expr.Reduce_and ->
    Bitvec.of_bool (Bitvec.equal a (Bitvec.ones (Bitvec.width a)))

let apply_binop op a b =
  match op with
  | Expr.Add -> Bitvec.add a b
  | Expr.Sub -> Bitvec.sub a b
  | Expr.Mul -> Bitvec.mul a b
  | Expr.And -> Bitvec.logand a b
  | Expr.Or -> Bitvec.logor a b
  | Expr.Xor -> Bitvec.logxor a b
  | Expr.Eq -> Bitvec.eq a b
  | Expr.Ne -> Bitvec.lognot (Bitvec.eq a b)
  | Expr.Ltu -> Bitvec.lt_unsigned a b
  | Expr.Lts -> Bitvec.lt_signed a b
  | Expr.Shl -> Bitvec.shift_left a (Bitvec.to_int b)
  | Expr.Shr -> Bitvec.shift_right_logical a (Bitvec.to_int b)
  | Expr.Sra -> Bitvec.shift_right_arith a (Bitvec.to_int b)

let run inst =
  let s = inst.slots in
  let tape = inst.plan.tape in
  Obs.Counters.bump Obs.Counters.Plan_runs;
  Obs.Counters.add Obs.Counters.Plan_ops (Array.length tape);
  for i = 0 to Array.length tape - 1 do
    let { dst; op } = Array.unsafe_get tape i in
    let v =
      match op with
      | O_unop (o, a) -> apply_unop o s.(a)
      | O_binop (o, a, b) -> apply_binop o s.(a) s.(b)
      | O_mux (c, a, b) -> if Bitvec.to_bool s.(c) then s.(a) else s.(b)
      | O_concat (a, b) -> Bitvec.concat s.(a) s.(b)
      | O_slice (a, hi, lo) -> Bitvec.slice s.(a) ~hi ~lo
      | O_zext (a, w) -> Bitvec.zero_extend s.(a) w
      | O_sext (a, w) -> Bitvec.sign_extend s.(a) w
      | O_file_read (f, a, w) ->
        let v = inst.files.(f) s.(a) in
        if Bitvec.width v <> w then
          rerr "file %s: stored width %d, expression expects %d"
            inst.plan.file_names.(f) (Bitvec.width v) w;
        v
    in
    s.(dst) <- v
  done

let get inst slot = inst.slots.(slot)
let get_bool inst slot = Bitvec.to_bool inst.slots.(slot)

let read_name inst name =
  match slot_of_name inst.plan name with
  | Some s -> Some inst.slots.(s)
  | None -> None
