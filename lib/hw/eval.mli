(** Evaluation of combinational expressions.

    The simulators evaluate the stage functions [f_k] (and the
    synthesized forwarding, interlock and stall-engine expressions)
    against the current register contents.

    {2 The two evaluation paths}

    The {e compiled} path ({!compile} / {!run_plan}, built on
    {!Plan}) turns an expression set into an instruction tape once and
    replays it; this is what every simulator uses.  The {e closure}
    path ({!env} / {!eval}) is the original tree-walking interpreter,
    kept as a documented compatibility shim: it is the reference
    implementation the plan compiler is property-tested against, and
    the convenient entry point for tests and constant folding.  New
    simulation code should compile a plan instead of calling {!eval}
    per cycle. *)

type env = {
  lookup_input : string -> Bitvec.t;
      (** Value of a named register or signal.  Should raise
          [Not_found] (or any exception) for unknown names. *)
  lookup_file : string -> Bitvec.t -> Bitvec.t;
      (** [lookup_file file addr] reads a register-file entry. *)
}

exception Eval_error of string
(** Raised when a lookup fails or a value has an unexpected width. *)

val eval : env -> Expr.t -> Bitvec.t
(** Tree-walking evaluation; the result width equals [Expr.width] of
    the expression.  Compatibility shim — see the module preamble. *)

val eval_bool : env -> Expr.t -> bool
(** Evaluate a 1-bit expression to a boolean. *)

val env_of_assoc :
  ?files:(string * (Bitvec.t -> Bitvec.t)) list ->
  (string * Bitvec.t) list ->
  env
(** Convenience environment over association lists (for tests).
    Lookup is backed by a hash table built once from the lists, so a
    read is O(1) instead of the O(n) of [List.assoc]; with duplicate
    names the first binding wins, matching [List.assoc].  Unknown
    names still raise [Not_found] so that {!eval} maps them to
    {!Eval_error}. *)

(** {1 Compiled evaluation} *)

type env_spec = {
  spec_inputs : (string * int) list;  (** scalar input names and widths *)
  spec_files : (string * int) list;   (** file names and data widths *)
}
(** The compile-time description of an environment: which names an
    expression set may read, with their widths.  Names outside the
    spec are rejected at compile time. *)

type compiled = {
  plan : Plan.t;
  roots : int array;  (** result slot of each compiled expression *)
}

val compile : ?optimize:bool -> env_spec -> Expr.t list -> compiled
(** Compile an expression list against an environment spec: common
    subexpressions are shared across all roots, widths are checked
    now, names resolve to slots.  [optimize] (default
    {!Plan.optimize_default}) runs {!Plan.optimize} on the tape (the
    [roots] array is already remapped).
    @raise Plan.Compile_error on width errors or undeclared names. *)

val run_plan : compiled -> env -> Bitvec.t array
(** Evaluate a compiled plan against a closure environment: inputs are
    fetched by name once per call, the tape runs, and the root values
    are returned in order.  Errors are reported as {!Eval_error} with
    the same messages as {!eval}. *)
