type t = { w : int; v : int }

exception Width_mismatch of string

let max_width = 62

let mask w = if w = max_width then -1 lsr (63 - max_width) else (1 lsl w) - 1

(* Zeros are interned per width: register-file images pad with zeros,
   and sharing one object per width lets session resets and snapshot
   comparisons recognize untouched entries by pointer (it also spares
   the allocation). *)
let zeros = Array.init (max_width + 1) (fun w -> { w; v = 0 })

let make ~width v =
  if width < 1 || width > max_width then
    invalid_arg (Printf.sprintf "Bitvec.make: width %d not in 1..%d" width max_width);
  let v = v land mask width in
  if v = 0 then zeros.(width) else { w = width; v }

let zero width = make ~width 0
let one width = make ~width 1
let ones width = make ~width (mask width)
let width t = t.w
let to_int t = t.v

let to_signed_int t =
  if t.w = max_width then t.v
  else if t.v land (1 lsl (t.w - 1)) <> 0 then t.v - (1 lsl t.w)
  else t.v

let equal a b = a.w = b.w && a.v = b.v

let compare a b =
  let c = Int.compare a.w b.w in
  if c <> 0 then c else Int.compare a.v b.v

let is_zero t = t.v = 0

let bit t i =
  if i < 0 || i >= t.w then invalid_arg "Bitvec.bit: index out of range";
  t.v land (1 lsl i) <> 0

let check op a b =
  if a.w <> b.w then
    raise (Width_mismatch (Printf.sprintf "%s: %d vs %d bits" op a.w b.w))

let add a b = check "add" a b; make ~width:a.w (a.v + b.v)
let sub a b = check "sub" a b; make ~width:a.w (a.v - b.v)
let mul a b = check "mul" a b; make ~width:a.w (a.v * b.v)
let neg a = make ~width:a.w (- a.v)
let logand a b = check "and" a b; { a with v = a.v land b.v }
let logor a b = check "or" a b; { a with v = a.v lor b.v }
let logxor a b = check "xor" a b; { a with v = a.v lxor b.v }
let lognot a = { a with v = lnot a.v land mask a.w }

let shift_left a n =
  if n >= a.w then zero a.w else make ~width:a.w (a.v lsl n)

let shift_right_logical a n =
  if n >= a.w then zero a.w else { a with v = a.v lsr n }

let shift_right_arith a n =
  let s = to_signed_int a in
  let n = min n (a.w - 1) in
  make ~width:a.w (s asr n)

let of_bool b = if b then one 1 else zero 1
let to_bool t = t.v <> 0
let eq a b = check "eq" a b; of_bool (a.v = b.v)
let lt_unsigned a b = check "ltu" a b; of_bool (a.v < b.v)
let lt_signed a b = check "lts" a b; of_bool (to_signed_int a < to_signed_int b)

let concat hi lo =
  let w = hi.w + lo.w in
  if w > max_width then invalid_arg "Bitvec.concat: result too wide";
  { w; v = (hi.v lsl lo.w) lor lo.v }

let slice t ~hi ~lo =
  if lo < 0 || hi < lo || hi >= t.w then invalid_arg "Bitvec.slice: bad range";
  make ~width:(hi - lo + 1) (t.v lsr lo)

let zero_extend t w =
  if w < t.w then invalid_arg "Bitvec.zero_extend: narrower target";
  make ~width:w t.v

let sign_extend t w =
  if w < t.w then invalid_arg "Bitvec.sign_extend: narrower target";
  make ~width:w (to_signed_int t)

let truncate t w = make ~width:w t.v
let pp ppf t = Format.fprintf ppf "%d'd%d" t.w t.v
let to_string t = Format.asprintf "%a" pp t
let pp_hex ppf t = Format.fprintf ppf "%d'h%x" t.w t.v
