type env = {
  lookup_input : string -> Bitvec.t;
  lookup_file : string -> Bitvec.t -> Bitvec.t;
}

exception Eval_error of string

let err fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let eval_unop op a =
  match op with
  | Expr.Not -> Bitvec.lognot a
  | Expr.Neg -> Bitvec.neg a
  | Expr.Reduce_or -> Bitvec.of_bool (not (Bitvec.is_zero a))
  | Expr.Reduce_and -> Bitvec.of_bool (Bitvec.equal a (Bitvec.ones (Bitvec.width a)))

let eval_binop op a b =
  match op with
  | Expr.Add -> Bitvec.add a b
  | Expr.Sub -> Bitvec.sub a b
  | Expr.Mul -> Bitvec.mul a b
  | Expr.And -> Bitvec.logand a b
  | Expr.Or -> Bitvec.logor a b
  | Expr.Xor -> Bitvec.logxor a b
  | Expr.Eq -> Bitvec.eq a b
  | Expr.Ne -> Bitvec.lognot (Bitvec.eq a b)
  | Expr.Ltu -> Bitvec.lt_unsigned a b
  | Expr.Lts -> Bitvec.lt_signed a b
  | Expr.Shl -> Bitvec.shift_left a (Bitvec.to_int b)
  | Expr.Shr -> Bitvec.shift_right_logical a (Bitvec.to_int b)
  | Expr.Sra -> Bitvec.shift_right_arith a (Bitvec.to_int b)

let rec eval env e =
  match e with
  | Expr.Const v -> v
  | Expr.Input (n, w) ->
    let v = try env.lookup_input n with Not_found -> err "unknown input %s" n in
    if Bitvec.width v <> w then
      err "input %s: stored width %d, expression expects %d" n (Bitvec.width v) w
    else v
  | Expr.Unop (op, a) -> eval_unop op (eval env a)
  | Expr.Binop (op, a, b) -> eval_binop op (eval env a) (eval env b)
  | Expr.Mux (s, a, b) ->
    if Bitvec.to_bool (eval env s) then eval env a else eval env b
  | Expr.Concat (a, b) -> Bitvec.concat (eval env a) (eval env b)
  | Expr.Slice (a, hi, lo) -> Bitvec.slice (eval env a) ~hi ~lo
  | Expr.Zext (a, w) -> Bitvec.zero_extend (eval env a) w
  | Expr.Sext (a, w) -> Bitvec.sign_extend (eval env a) w
  | Expr.File_read { file; data_width; addr } ->
    let v =
      try env.lookup_file file (eval env addr)
      with Not_found -> err "unknown register file %s" file
    in
    if Bitvec.width v <> data_width then
      err "file %s: stored width %d, expression expects %d" file
        (Bitvec.width v) data_width
    else v

let eval_bool env e = Bitvec.to_bool (eval env e)

(* Hash-table-backed lookup; [List.rev] + [replace] keeps the
   first-binding-wins semantics of [List.assoc]. *)
let tbl_of_assoc l =
  let tbl = Hashtbl.create (max 16 (List.length l)) in
  List.iter (fun (n, v) -> Hashtbl.replace tbl n v) (List.rev l);
  tbl

let env_of_assoc ?(files = []) bindings =
  let inputs = tbl_of_assoc bindings in
  let files = tbl_of_assoc files in
  {
    lookup_input = (fun n -> Hashtbl.find inputs n);
    lookup_file = (fun f addr -> (Hashtbl.find files f) addr);
  }

type env_spec = {
  spec_inputs : (string * int) list;
  spec_files : (string * int) list;
}

type compiled = {
  plan : Plan.t;
  roots : int array;
}

let compile ?(optimize = Plan.optimize_default ()) spec exprs =
  let b =
    Plan.create ~inputs:spec.spec_inputs ~files:spec.spec_files ()
  in
  let roots = Array.of_list (List.map (Plan.root b) exprs) in
  let plan = Plan.build b in
  if optimize then begin
    let plan, remap = Plan.optimize_remap plan in
    { plan; roots = Array.map (fun s -> remap.(s)) roots }
  end
  else { plan; roots }

let run_plan c env =
  let inst = Plan.instance c.plan in
  Plan.iter_inputs c.plan (fun name ~slot ~width:_ ->
      let v =
        try env.lookup_input name
        with Not_found -> err "unknown input %s" name
      in
      try Plan.set inst slot v with Plan.Run_error m -> err "%s" m);
  Plan.iter_files c.plan (fun name ~index:_ ~width:_ ->
      Plan.bind_file inst name (fun addr ->
          try env.lookup_file name addr
          with Not_found -> err "unknown register file %s" name));
  (try Plan.run inst with Plan.Run_error m -> err "%s" m);
  Array.map (Plan.get inst) c.roots
