(* Lane bookkeeping for bit-parallel batched evaluation.

   A pack of up to [max_lanes] independent co-simulations is carried
   in the bit-lanes of a native int: bit [l] of a packed word is the
   value of a width-1 signal in lane [l].  OCaml ints are 63-bit, and
   [Bitvec] already reserves 62 bits for the widest scalar value, so a
   word holds 62 lanes; callers pack larger batches into consecutive
   62-lane chunks.

   The invariant throughout the lane engine: bits [0 .. active-1] of a
   packed word are meaningful, higher bits are unspecified garbage.
   Every consumer masks with [mask_of_count active] (or only ever
   reads bits below [active]); producers are free to leave junk in the
   high bits. *)

let max_lanes = 62

(* All-ones over the low [n] bits, as a non-negative int (except for
   the full 62-lane mask, which still fits a native int since
   [2^62 - 1 = max_int]). *)
let mask_of_count n =
  if n < 0 || n > max_lanes then
    invalid_arg (Printf.sprintf "Lanes.mask_of_count: %d" n);
  if n = max_lanes then max_int else (1 lsl n) - 1

let test w l = (w lsr l) land 1 <> 0
let set w l = w lor (1 lsl l)
let clear w l = w land lnot (1 lsl l)

let popcount w =
  let rec go acc w = if w = 0 then acc else go (acc + (w land 1)) (w lsr 1) in
  go 0 w

(* The majority bit value among the lanes selected by [mask].  Ties
   break towards 0, so the flagged minority is the 1-side. *)
let majority ~mask w =
  2 * popcount (w land mask) > popcount mask

(* Lanes in [mask] whose bit in [w] differs from the majority bit. *)
let minority ~mask w =
  if majority ~mask w then mask land lnot w else mask land w

let iter ~mask f =
  let rec go w =
    if w <> 0 then begin
      let l = ((w land -w) - 1) |> popcount in
      f l;
      go (w land (w - 1))
    end
  in
  go mask

let fold ~mask f init =
  let acc = ref init in
  iter ~mask (fun l -> acc := f !acc l);
  !acc
