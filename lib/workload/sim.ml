type t = {
  sim_tr : Pipeline.Transform.t;
  sim_compiled : Pipeline.Pipesem.compiled Lazy.t;
  sim_reference : Machine.Seqsem.trace option;
  sim_instructions : int;
}

let make ?compiled ?optimize ?reference ?(instructions = 200) tr =
  {
    sim_tr = tr;
    sim_compiled =
      (match compiled with
      | Some c -> lazy c
      | None -> lazy (Pipeline.Pipesem.compile ?optimize tr));
    sim_reference = reference;
    sim_instructions = instructions;
  }

let transform t = t.sim_tr
let instructions t = t.sim_instructions
let compiled t = Lazy.force t.sim_compiled

let stop t = function Some n -> n | None -> t.sim_instructions

let run ?ext ?callbacks ?inject ?cancel ?max_cycles ?stop_after t =
  Pipeline.Pipesem.run_compiled ?ext ?callbacks ?inject ?cancel ?max_cycles
    ~stop_after:(stop t stop_after) (compiled t)

let run_interpreted ?ext ?callbacks ?max_cycles ?stop_after t =
  Pipeline.Pipesem.run_reference ?ext ?callbacks ?max_cycles
    ~stop_after:(stop t stop_after) t.sim_tr

let attribute ?ext ?stop_after t =
  Pipeline.Attribution.run ?ext ~compiled:(compiled t)
    ~stop_after:(stop t stop_after) t.sim_tr

let trace_vcd ~path ?ext ?registers ?signals ?stop_after t =
  Pipeline.Tracer.write ~path ?ext ?registers ?signals
    ~compiled:(compiled t) ~stop_after:(stop t stop_after) t.sim_tr

let reference t = t.sim_reference

let verify ?ext ?max_instructions ?inject ?cancel t =
  Proof_engine.Consistency.check ?ext
    ~max_instructions:(stop t max_instructions)
    ?reference:t.sim_reference ~compiled:(compiled t) ?inject ?cancel t.sim_tr

let stats_row ?label t (s : Pipeline.Pipesem.stats) =
  let label = match label with Some l -> l | None -> "sim" in
  Stats.of_stats ~label
    ~n_stages:t.sim_tr.Pipeline.Transform.base.Machine.Spec.n_stages s
