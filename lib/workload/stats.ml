type row = {
  label : string;
  instructions : int;
  cycles : int;
  cpi : float;
  speedup_vs_sequential : float;
  fetch_stall_cycles : int;
  dhaz_cycles : int;
  ext_cycles : int;
  rollbacks : int;
  squashed : int;
}

let of_stats ~label ~n_stages (s : Pipeline.Pipesem.stats) =
  let cpi = Pipeline.Pipesem.cpi s in
  {
    label;
    instructions = s.Pipeline.Pipesem.retired;
    cycles = s.Pipeline.Pipesem.cycles;
    cpi;
    speedup_vs_sequential = float_of_int n_stages /. cpi;
    fetch_stall_cycles = s.Pipeline.Pipesem.fetch_stall_cycles;
    dhaz_cycles = s.Pipeline.Pipesem.dhaz_cycles;
    ext_cycles = s.Pipeline.Pipesem.ext_cycles;
    rollbacks = s.Pipeline.Pipesem.rollbacks;
    squashed = s.Pipeline.Pipesem.squashed;
  }

let pp_table ppf rows =
  Format.fprintf ppf "%-22s %8s %8s %6s %8s %7s %6s %5s %9s %7s@." "workload"
    "instr" "cycles" "CPI" "speedup" "stalls" "dhaz" "ext" "rollbacks"
    "squash";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-22s %8d %8d %6.2f %8.2f %7d %6d %5d %9d %7d@."
        r.label r.instructions r.cycles r.cpi r.speedup_vs_sequential
        r.fetch_stall_cycles r.dhaz_cycles r.ext_cycles r.rollbacks r.squashed)
    rows

let row_to_json r =
  Obs.Json.Obj
    [
      ("label", Obs.Json.String r.label);
      ("instructions", Obs.Json.Int r.instructions);
      ("cycles", Obs.Json.Int r.cycles);
      ("cpi", Obs.Json.Float r.cpi);
      ("speedup_vs_sequential", Obs.Json.Float r.speedup_vs_sequential);
      ("fetch_stall_cycles", Obs.Json.Int r.fetch_stall_cycles);
      ("dhaz_cycles", Obs.Json.Int r.dhaz_cycles);
      ("ext_cycles", Obs.Json.Int r.ext_cycles);
      ("rollbacks", Obs.Json.Int r.rollbacks);
      ("squashed", Obs.Json.Int r.squashed);
    ]

let geomean_cpi rows =
  match rows with
  | [] -> nan
  | _ ->
    let log_sum = List.fold_left (fun acc r -> acc +. log r.cpi) 0.0 rows in
    exp (log_sum /. float_of_int (List.length rows))
