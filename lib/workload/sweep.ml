type config = {
  variant : Dlx.Seq_dlx.variant;
  options : Pipeline.Fwd_spec.options;
  ext : Pipeline.Pipesem.ext_model option;
  verify : bool;
}

let default =
  {
    variant = Dlx.Seq_dlx.Base;
    options = Pipeline.Fwd_spec.default_options;
    ext = None;
    verify = true;
  }

exception Verification_failed of string

let memory_wait_states ~every ~wait ~stage ~cycle =
  stage = 3 && cycle mod every < wait

let sim_of_program ?(config = default) (p : Dlx.Progs.t) =
  let program = Dlx.Progs.program p in
  let tr =
    Dlx.Seq_dlx.transform ~options:config.options ~data:p.Dlx.Progs.data
      config.variant ~program
  in
  let n = p.Dlx.Progs.dyn_instructions in
  let reference =
    if config.verify then
      Some
        (Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data config.variant ~program
           ~instructions:n)
    else None
  in
  Sim.make ?reference ~instructions:n tr

let run_program ?(config = default) (p : Dlx.Progs.t) =
  let sim = sim_of_program ~config p in
  let stats =
    if config.verify then begin
      let report = Sim.verify ?ext:config.ext sim in
      if not (Proof_engine.Consistency.ok report) then
        raise
          (Verification_failed
             (Format.asprintf "%s: %a" p.Dlx.Progs.prog_name
                Proof_engine.Consistency.pp_report report));
      report.Proof_engine.Consistency.stats
    end
    else (Sim.run ?ext:config.ext sim).Pipeline.Pipesem.stats
  in
  Stats.of_stats ~label:p.Dlx.Progs.prog_name ~n_stages:5 stats

(* Each sweep point owns its whole pipeline — program generation,
   transformation, plan compilation, simulation, verification — so the
   points share no mutable state and fan out over the pool verbatim.
   Pool.map preserves input order: the rows are bit-identical to the
   serial execution whatever the pool size. *)
let sweep_span name ?pool points f =
  let j =
    match pool with None -> 1 | Some p -> Exec.Pool.size p
  in
  Obs.Span.with_span name
    ~args:
      [ ("points", string_of_int (List.length points));
        ("j", string_of_int j) ]
  @@ fun () -> Exec.Pool.map_opt pool f points

let dependency_sweep ?config ?pool ~biases ~length ~seed () =
  sweep_span "sweep.dependency" ?pool biases (fun bias ->
      let p = Gen.generate ~seed ~length (Gen.alu_only ~dependency_bias:bias) in
      (bias, run_program ?config p))

let branch_sweep ?config ?pool ~taken_fracs ~length ~seed () =
  sweep_span "sweep.branch" ?pool taken_fracs (fun tf ->
      let p = Gen.generate ~seed ~length (Gen.branch_heavy ~taken_frac:tf) in
      (tf, run_program ?config p))
