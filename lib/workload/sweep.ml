type config = {
  variant : Dlx.Seq_dlx.variant;
  options : Pipeline.Fwd_spec.options;
  ext : Pipeline.Pipesem.ext_model option;
  verify : bool;
}

let default =
  {
    variant = Dlx.Seq_dlx.Base;
    options = Pipeline.Fwd_spec.default_options;
    ext = None;
    verify = true;
  }

exception Verification_failed of string

let memory_wait_states ~every ~wait ~stage ~cycle =
  stage = 3 && cycle mod every < wait

let sim_of_program ?(config = default) (p : Dlx.Progs.t) =
  let program = Dlx.Progs.program p in
  let tr =
    Dlx.Seq_dlx.transform ~options:config.options ~data:p.Dlx.Progs.data
      config.variant ~program
  in
  let n = p.Dlx.Progs.dyn_instructions in
  let reference =
    if config.verify then
      Some
        (Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data config.variant ~program
           ~instructions:n)
    else None
  in
  Sim.make ?reference ~instructions:n tr

let run_program ?(config = default) (p : Dlx.Progs.t) =
  let sim = sim_of_program ~config p in
  let stats =
    if config.verify then begin
      let report = Sim.verify ?ext:config.ext sim in
      if not (Proof_engine.Consistency.ok report) then
        raise
          (Verification_failed
             (Format.asprintf "%s: %a" p.Dlx.Progs.prog_name
                Proof_engine.Consistency.pp_report report));
      report.Proof_engine.Consistency.stats
    end
    else (Sim.run ?ext:config.ext sim).Pipeline.Pipesem.stats
  in
  Stats.of_stats ~label:p.Dlx.Progs.prog_name ~n_stages:5 stats

let dependency_sweep ?config ~biases ~length ~seed () =
  List.map
    (fun bias ->
      let p = Gen.generate ~seed ~length (Gen.alu_only ~dependency_bias:bias) in
      (bias, run_program ?config p))
    biases

let branch_sweep ?config ~taken_fracs ~length ~seed () =
  List.map
    (fun tf ->
      let p = Gen.generate ~seed ~length (Gen.branch_heavy ~taken_frac:tf) in
      (tf, run_program ?config p))
    taken_fracs
