type config = {
  variant : Dlx.Seq_dlx.variant;
  options : Pipeline.Fwd_spec.options;
  ext : Pipeline.Pipesem.ext_model option;
  verify : bool;
}

let default =
  {
    variant = Dlx.Seq_dlx.Base;
    options = Pipeline.Fwd_spec.default_options;
    ext = None;
    verify = true;
  }

exception Verification_failed of string

let memory_wait_states ~every ~wait ~stage ~cycle =
  stage = 3 && cycle mod every < wait

let sim_of_program ?(config = default) (p : Dlx.Progs.t) =
  let program = Dlx.Progs.program p in
  let tr =
    Dlx.Seq_dlx.transform ~options:config.options ~data:p.Dlx.Progs.data
      config.variant ~program
  in
  let n = p.Dlx.Progs.dyn_instructions in
  let reference =
    if config.verify then
      Some
        (Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data config.variant ~program
           ~instructions:n)
    else None
  in
  Sim.make ?reference ~instructions:n tr

let run_program ?(config = default) (p : Dlx.Progs.t) =
  let sim = sim_of_program ~config p in
  let stats =
    if config.verify then begin
      let report = Sim.verify ?ext:config.ext sim in
      if not (Proof_engine.Consistency.ok report) then
        raise
          (Verification_failed
             (Format.asprintf "%s: %a" p.Dlx.Progs.prog_name
                Proof_engine.Consistency.pp_report report));
      report.Proof_engine.Consistency.stats
    end
    else (Sim.run ?ext:config.ext sim).Pipeline.Pipesem.stats
  in
  Stats.of_stats ~label:p.Dlx.Progs.prog_name ~n_stages:5 stats

(* The machine shape of a sweep is fixed by the config (variant +
   options): only the program and its data image differ between
   points.  The batched path compiles the shape once — from the first
   point — and drives every point by overriding the IMEM/MEM initial
   values over per-domain cached sessions ({!Pipesem.local_session}),
   so a pool worker binds each plan once for the whole sweep.  Rows
   are bit-identical to the rebuild path ([run_program] per point). *)
let sweep_shape ~config (p0 : Dlx.Progs.t) =
  Proof_engine.Consistency.shape
    (Dlx.Seq_dlx.transform ~options:config.options ~data:p0.Dlx.Progs.data
       config.variant ~program:(Dlx.Progs.program p0))

let run_batched ~config ~shape (p : Dlx.Progs.t) =
  let program = Dlx.Progs.program p in
  let n = p.Dlx.Progs.dyn_instructions in
  let init = Dlx.Seq_dlx.image ~data:p.Dlx.Progs.data ~program () in
  let stats =
    if config.verify then begin
      let reference =
        Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data config.variant ~program
          ~instructions:n
      in
      let report =
        Proof_engine.Consistency.check_batched ?ext:config.ext
          ~max_instructions:n ~reference ~init shape
      in
      if not (Proof_engine.Consistency.ok report) then
        raise
          (Verification_failed
             (Format.asprintf "%s: %a" p.Dlx.Progs.prog_name
                Proof_engine.Consistency.pp_report report));
      report.Proof_engine.Consistency.stats
    end
    else
      (Pipeline.Pipesem.run_session ?ext:config.ext ~init ~stop_after:n
         (Pipeline.Pipesem.local_session
            (Proof_engine.Consistency.shape_compiled shape)))
        .Pipeline.Pipesem.stats
  in
  Stats.of_stats ~label:p.Dlx.Progs.prog_name ~n_stages:5 stats

(* Each sweep point generates its own program, so the points share no
   mutable state and fan out over the pool.  The fan-out is {e
   sharded} ({!Exec.Pool.map_sharded}): one contiguous chunk of points
   per pool slot, not one task per point.  Per-point tasks were too
   fine a grain — the dispatch cost (enqueue, wake, join) rivals a
   point's simulation time at smoke sizes, and every task re-entered
   the per-domain session cache.  A shard binds its domain's cached
   session once and runs its points back to back (per-domain session
   affinity).  Shards are concatenated in input order, so the rows
   stay bit-identical to the serial execution whatever the pool
   size. *)
let sweep_span name ?pool points f =
  let j =
    match pool with None -> 1 | Some p -> Exec.Pool.size p
  in
  Obs.Span.with_span name
    ~args:
      [ ("points", string_of_int (List.length points));
        ("j", string_of_int j) ]
  @@ fun () -> Exec.Pool.map_opt_sharded pool f points

(* Lane mode: consecutive points pack into ≤62-lane words, one
   bit-parallel verified run per pack ({!Consistency.check_lanes}).
   Each point still generates its own program and golden reference
   trace (scalar, identical to the batched path); only the pipelined
   verification run is shared.  A lane whose verdict is not ok is
   replayed through the scalar path — with its counters discarded,
   the lane run already accounted the point — which either raises the
   byte-identical [Verification_failed] or (divergence) supplies the
   scalar row.  Rows and WORK counters match the scalar batched sweep
   bit for bit. *)
let run_lane_pack ~config ~shape pack =
  let progs =
    List.map
      (fun (pt, (p : Dlx.Progs.t)) ->
        Obs.Counters.bump Obs.Counters.Sweep_points;
        let program = Dlx.Progs.program p in
        let n = p.Dlx.Progs.dyn_instructions in
        let reference =
          Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data config.variant ~program
            ~instructions:n
        in
        let init = Dlx.Seq_dlx.image ~data:p.Dlx.Progs.data ~program () in
        (pt, p, reference, init))
      pack
  in
  let references =
    Array.of_list (List.map (fun (_, _, r, _) -> r) progs)
  in
  let inits = Array.of_list (List.map (fun (_, _, _, i) -> i) progs) in
  let verdicts =
    Proof_engine.Consistency.check_lanes ?ext:config.ext ~references ~inits
      shape
  in
  List.mapi
    (fun l (pt, (p : Dlx.Progs.t), _, _) ->
      let v = verdicts.(l) in
      if v.Proof_engine.Consistency.lv_ok then
        ( pt,
          Stats.of_stats ~label:p.Dlx.Progs.prog_name ~n_stages:5
            v.Proof_engine.Consistency.lv_stats )
      else
        Obs.Counters.with_discarded (fun () ->
            (pt, run_batched ~config ~shape p)))
    progs

let rec chunk n l =
  if l = [] then []
  else begin
    let rec split k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: tl -> split (k - 1) (x :: acc) tl
    in
    let pack, rest = split n [] l in
    pack :: chunk n rest
  end

let sweep name ?(config = default) ?pool ?(batched = true) ?(lanes = false)
    ~points ~gen () =
  if not batched then
    sweep_span name ?pool points (fun pt ->
        Obs.Counters.bump Obs.Counters.Sweep_points;
        (pt, run_program ~config (gen pt)))
  else
    match points with
    | [] -> []
    | p0 :: _ ->
      let shape = sweep_shape ~config (gen p0) in
      if lanes && config.verify then
        let packs = chunk Hw.Lanes.max_lanes points in
        List.concat
          (sweep_span name ?pool packs (fun pack ->
               run_lane_pack ~config ~shape
                 (List.map (fun pt -> (pt, gen pt)) pack)))
      else
        sweep_span name ?pool points (fun pt ->
            Obs.Counters.bump Obs.Counters.Sweep_points;
            (pt, run_batched ~config ~shape (gen pt)))

let dependency_sweep ?config ?pool ?batched ?lanes ~biases ~length ~seed () =
  sweep "sweep.dependency" ?config ?pool ?batched ?lanes ~points:biases
    ~gen:(fun bias ->
      Gen.generate ~seed ~length (Gen.alu_only ~dependency_bias:bias))
    ()

let branch_sweep ?config ?pool ?batched ?lanes ~taken_fracs ~length ~seed () =
  sweep "sweep.branch" ?config ?pool ?batched ?lanes ~points:taken_fracs
    ~gen:(fun tf ->
      Gen.generate ~seed ~length (Gen.branch_heavy ~taken_frac:tf))
    ()
