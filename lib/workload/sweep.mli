(** Experiment drivers: run a program on a configured DLX pipeline and
    collect the metrics the benchmark harness reports. *)

type config = {
  variant : Dlx.Seq_dlx.variant;
  options : Pipeline.Fwd_spec.options;
  ext : Pipeline.Pipesem.ext_model option;  (** e.g. slow memory *)
  verify : bool;  (** also run the data-consistency checker *)
}

val default : config
(** Base variant, full forwarding, no external stalls, verified. *)

val sim_of_program : ?config:config -> Dlx.Progs.t -> Sim.t
(** Transform the configured DLX variant with the program loaded and
    wrap it in a {!Sim} handle (reference trace attached when
    [config.verify] is set). *)

val run_program : ?config:config -> Dlx.Progs.t -> Stats.row
(** Transform, simulate [dyn_instructions] instructions, optionally
    verify against the golden model (failures raise).  All simulation
    goes through the compiled plan ({!Sim}). *)

exception Verification_failed of string

val memory_wait_states : every:int -> wait:int -> Pipeline.Pipesem.ext_model
(** A deterministic slow-memory model: every [every]-th cycle, the MEM
    stage stalls for [wait] consecutive cycles — the paper's "external
    stall condition... e.g. caused by slow memory". *)

val dependency_sweep :
  ?config:config -> ?pool:Exec.Pool.t -> ?batched:bool -> ?lanes:bool ->
  biases:float list -> length:int -> seed:int -> unit ->
  (float * Stats.row) list
(** CPI as a function of the operand dependency bias.

    By default ([batched], the compile-once path) the machine shape —
    fixed by the config's variant and options — is transformed and
    plan-compiled {e once} for the whole sweep; each point only
    generates its program and rebinds the IMEM/MEM initial values
    over a per-domain cached session
    ({!Pipeline.Pipesem.local_session}).  [~batched:false] restores
    the rebuild path (one {!Sim.t} per point: generation,
    transformation, plan compilation and simulation all per-task) —
    kept as the reference for the equivalence tests and the
    [PERF.sweep_batched_vs_rebuild] benchmark; both paths produce
    bit-identical rows.

    With [pool], the points fan out over the domain pool; rows are
    bit-identical to the serial run and in input order.

    [lanes] (batched, verified sweeps only; ignored otherwise) packs
    consecutive points into ≤62-lane bit-parallel packs: one
    {!Proof_engine.Consistency.check_lanes} run verifies the whole
    pack against the points' individual golden traces.  Rows, failure
    behaviour and WORK counters are bit-identical to the scalar
    batched sweep; a lane the pack cannot represent is transparently
    replayed through the scalar path. *)

val branch_sweep :
  ?config:config -> ?pool:Exec.Pool.t -> ?batched:bool -> ?lanes:bool ->
  taken_fracs:float list -> length:int -> seed:int -> unit ->
  (float * Stats.row) list
