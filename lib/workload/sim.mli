(** Unified simulation driver.

    A {!t} bundles a transformed machine with its compiled evaluation
    plan ({!Pipeline.Pipesem.compile}, built lazily and shared by
    every entry point) and, optionally, the sequential reference trace
    and the nominal instruction count of the loaded workload.  The
    run / trace / attribute / verify entry points used by {!Sweep},
    the benchmark harness and the [pipegen] CLI all dispatch through
    it, so a machine is compiled once per selection no matter how many
    views of it are requested.

    Thread safety: the plan is held in a [Lazy.t], and OCaml lazy
    suspensions are {e not} domain-safe — two domains racing the first
    force is undefined behaviour.  Either force it on one domain
    before sharing ({!compiled} — the resulting
    {!Pipeline.Pipesem.compiled} is immutable and freely shareable) or,
    as {!Sweep} does, build one [t] per {!Exec.Pool} task and never
    share it. *)

type t

val make :
  ?compiled:Pipeline.Pipesem.compiled ->
  ?optimize:bool ->
  ?reference:Machine.Seqsem.trace ->
  ?instructions:int ->
  Pipeline.Transform.t ->
  t
(** [instructions] is the workload's dynamic instruction count — the
    default [stop_after] of every entry point (default: 200, matching
    {!Proof_engine.Consistency.check}).  [reference] is the
    specification trace for verification; when absent, {!verify} runs
    the prepared sequential machine itself.  [compiled], when given,
    skips compilation and reuses an existing plan — it must carry this
    very transform (e.g. a same-shape plan passed through
    {!Pipeline.Pipesem.rebind}); the service layer uses this to share
    one plan across requests that differ only in program image. *)

val transform : t -> Pipeline.Transform.t
val instructions : t -> int

val compiled : t -> Pipeline.Pipesem.compiled
(** The machine's evaluation plan; compiled on first use, then shared. *)

val run :
  ?ext:Pipeline.Pipesem.ext_model ->
  ?callbacks:Pipeline.Pipesem.callbacks ->
  ?inject:Pipeline.Pipesem.injection ->
  ?cancel:Exec.Cancel.token ->
  ?max_cycles:int ->
  ?stop_after:int ->
  t ->
  Pipeline.Pipesem.result
(** Cycle-accurate simulation through the compiled plan.  [inject]
    and [cancel] as in {!Pipeline.Pipesem.run_compiled}. *)

val run_interpreted :
  ?ext:Pipeline.Pipesem.ext_model ->
  ?callbacks:Pipeline.Pipesem.callbacks ->
  ?max_cycles:int ->
  ?stop_after:int ->
  t ->
  Pipeline.Pipesem.result
(** The interpreted oracle ({!Pipeline.Pipesem.run_reference}): the
    same cycle driver evaluating expression trees directly.  Used for
    differential testing and as the benchmark baseline. *)

val attribute :
  ?ext:Pipeline.Pipesem.ext_model ->
  ?stop_after:int ->
  t ->
  Pipeline.Pipesem.result * Obs.Hazard.summary
(** Simulation with hazard attribution ({!Pipeline.Attribution}). *)

val trace_vcd :
  path:string ->
  ?ext:Pipeline.Pipesem.ext_model ->
  ?registers:string list ->
  ?signals:string list ->
  ?stop_after:int ->
  t ->
  Pipeline.Pipesem.result
(** Simulation with waveform capture ({!Pipeline.Tracer.write}). *)

val reference : t -> Machine.Seqsem.trace option
(** The stored specification trace, if one was given to {!make}. *)

val verify :
  ?ext:Pipeline.Pipesem.ext_model ->
  ?max_instructions:int ->
  ?inject:Pipeline.Pipesem.injection ->
  ?cancel:Exec.Cancel.token ->
  t ->
  Proof_engine.Consistency.report
(** Data-consistency co-simulation against the stored reference trace
    (or the prepared sequential machine when none was given).
    [max_instructions] defaults to {!instructions}.  [inject] checks
    a faulted machine against the unfaulted reference; [cancel]
    aborts by raising {!Exec.Cancel.Cancelled}. *)

val stats_row : ?label:string -> t -> Pipeline.Pipesem.stats -> Stats.row
(** Summarize into a workload table row; the sequential-machine stage
    count comes from the base machine. *)
