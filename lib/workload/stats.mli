(** Derived performance metrics for machine comparisons. *)

type row = {
  label : string;
  instructions : int;
  cycles : int;
  cpi : float;
  speedup_vs_sequential : float;
      (** [n_stages / cpi]: the sequential machine spends [n] cycles
          per instruction *)
  fetch_stall_cycles : int;
  dhaz_cycles : int;  (** cycles a data-hazard interlock held some stage *)
  ext_cycles : int;  (** cycles an external stall held some stage *)
  rollbacks : int;
  squashed : int;  (** speculatively fetched instructions squashed *)
}

val of_stats :
  label:string -> n_stages:int -> Pipeline.Pipesem.stats -> row

val pp_table : Format.formatter -> row list -> unit

val row_to_json : row -> Obs.Json.t

val geomean_cpi : row list -> float
