(* End-to-end smoke of [pipegen serve] (the @check serve leg).

   Drives the real binary over pipes and sockets, in four legs:

   1. Basics — a small request batch goes through the serve loop, and
      the responses must (a) come back in input order, (b) match the
      direct CLI invocations byte for byte — text and exit code —
      since both front ends share one handler, and (c) answer a
      repeated request from the content-addressed verdict cache with a
      bit-identical payload, observable in the exported serve
      counters.
   2. Crash recovery — a journaled server is SIGKILLed mid-batch
      (injected delays hold the batch in flight); a restarted server
      must replay the journal and answer every admitted request
      byte-identically to a clean run, with a nonzero
      serve_journal_replayed counter and a truncated journal after its
      own clean shutdown.
   3. Disconnect containment — on a Unix socket, a client that hangs
      up before its (delayed) response is written costs the server an
      EPIPE on that connection only: the next client gets full
      service and SIGTERM still shuts the daemon down cleanly.
   4. Chaos soak (only with --chaos SEED) — ≥200 requests against a
      server armed with seeded crash+delay+wedge+kill injection inside
      the retry budget: every response must be byte-identical to the
      clean reference run — nothing lost, duplicated or corrupted. *)

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("serve_smoke: FAILED: " ^ s);
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run a CLI subcommand, capturing stdout and the exit code. *)
let run_cli exe args =
  let cmd = String.concat " " (List.map Filename.quote (exe :: args)) in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  match Unix.close_process_in ic with
  | Unix.WEXITED code -> (Buffer.contents buf, code)
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> die "CLI `%s` was killed" cmd

let payload_string (r : Service.Response.t) =
  match r.Service.Response.result with
  | Ok p -> Obs.Json.to_string ~minify:true (Service.Response.payload_to_json p)
  | Error e -> die "unexpected error response: %s" (Service.Response.error_message e)

let response_text (r : Service.Response.t) =
  match r.Service.Response.result with
  | Ok p -> Service.Response.text p
  | Error e -> die "unexpected error response: %s" (Service.Response.error_message e)

(* ------------------------------------------------------------------ *)
(* Transport helpers                                                  *)
(* ------------------------------------------------------------------ *)

(* Spawn `pipegen serve` over pipes.  cloexec: the child must not
   inherit the parent-side pipe ends, or closing [to_serve] would
   never deliver EOF (the child itself would still hold a write end of
   its own stdin). *)
let spawn_serve exe extra_args =
  let stdin_r, stdin_w = Unix.pipe ~cloexec:true () in
  let stdout_r, stdout_w = Unix.pipe ~cloexec:true () in
  let pid =
    Unix.create_process exe
      (Array.of_list (exe :: "serve" :: extra_args))
      stdin_r stdout_w Unix.stderr
  in
  Unix.close stdin_r;
  Unix.close stdout_w;
  ( pid,
    Unix.out_channel_of_descr stdin_w,
    Unix.in_channel_of_descr stdout_r )

let send to_serve line =
  output_string to_serve (line ^ "\n");
  flush to_serve

(* One write, one flush: the whole batch reaches the server's reader
   in a single refill, i.e. as a single admission batch — which is
   what makes "journaled before evaluation" hold for the batch as a
   unit in the crash-recovery leg. *)
let send_batch to_serve lines =
  List.iter (fun l -> output_string to_serve (l ^ "\n")) lines;
  flush to_serve

(* One response line: the raw bytes and the decoded view. *)
let recv_opt from_serve =
  match input_line from_serve with
  | line -> (
    match Service.Response.of_string line with
    | Ok r -> Some (line, r)
    | Error msg -> die "undecodable response %S: %s" line msg)
  | exception End_of_file -> None

let recv from_serve =
  match recv_opt from_serve with
  | Some r -> r
  | None -> die "serve closed the stream early"

let require_id what ((_, r) : string * Service.Response.t) =
  match r.Service.Response.id with
  | Some id -> id
  | None -> die "%s: response carries no id" what

let wait_exit_0 what pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> die "%s: serve exited with %d" what n
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> die "%s: serve was killed" what

let counter_of_metrics what path name =
  let counters =
    match Obs.Json.parse (read_file path) with
    | Error msg -> die "%s: bad metrics file: %s" what msg
    | Ok j -> (
      match Obs.Json.member "counters" j with
      | Some c -> c
      | None -> die "%s: metrics file has no counters" what)
  in
  match Option.bind (Obs.Json.member name counters) Obs.Json.to_int_opt with
  | Some v -> v
  | None -> die "%s: metrics file has no %s counter" what name

(* The [i]-th member of a family of requests that are pairwise
   distinct up to their id and never share a verdict-cache key across
   different wire forms (Toy3 appears only kernel-less — its
   evaluation ignores the kernel, which would otherwise alias keys):
   duplicates of a member are answered [cached] deterministically
   (coalesced in-batch, verdict-cache hits across batches), so
   responses are byte-stable however the stream happens to batch. *)
let kernels = [| "fib_10"; "memcpy_8"; "dep_chain_24" |]

let family_line ~id i =
  match i mod 14 with
  | 12 ->
    Printf.sprintf {|{"pipegen":1,"id":"%s","kind":"verify","machine":"toy3"}|}
      id
  | 13 ->
    Printf.sprintf {|{"pipegen":1,"id":"%s","kind":"stats","machine":"toy3"}|}
      id
  | i ->
    let machine = if i mod 2 = 0 then "dlx5" else "dlx6" in
    let kernel = kernels.(i / 2 mod 3) in
    let kind = if i / 6 mod 2 = 0 then "stats" else "verify" in
    Printf.sprintf
      {|{"pipegen":1,"id":"%s","kind":"%s","machine":"%s","kernel":"%s"}|} id
      kind machine kernel

(* Pipe a whole workload through one server run: write every line (the
   batch fits the pipe buffer), read one response per line, clean EOF
   shutdown.  Returns the raw response lines in arrival order. *)
let run_workload what exe extra_args lines =
  let pid, to_serve, from_serve = spawn_serve exe extra_args in
  List.iter (fun l -> output_string to_serve (l ^ "\n")) lines;
  flush to_serve;
  let responses = List.map (fun _ -> recv from_serve) lines in
  close_out to_serve;
  wait_exit_0 what pid;
  close_in from_serve;
  responses

(* ------------------------------------------------------------------ *)
(* Leg 1: order, cache hit, counters, CLI equivalence                 *)
(* ------------------------------------------------------------------ *)

let basics_leg exe =
  let metrics_file = Filename.temp_file "serve_smoke" ".json" in
  let pid, to_serve, from_serve =
    spawn_serve exe [ "-j"; "2"; "--metrics-out"; metrics_file ]
  in
  (* Batch 1: two distinct requests; responses must be in input order. *)
  send to_serve {|{"pipegen":1,"id":"v1","kind":"verify","machine":"toy3"}|};
  send to_serve {|{"pipegen":1,"id":"s1","kind":"stats","machine":"dlx5"}|};
  let _, rv = recv from_serve in
  let _, rs = recv from_serve in
  if rv.Service.Response.id <> Some "v1" || rs.Service.Response.id <> Some "s1"
  then die "responses out of input order";
  if rv.Service.Response.cached then die "first verify claims to be cached";
  (* Batch 2: repeat the verify — must be a verdict-cache hit with a
     bit-identical payload. *)
  send to_serve {|{"pipegen":1,"id":"v2","kind":"verify","machine":"toy3"}|};
  let _, rv2 = recv from_serve in
  if not rv2.Service.Response.cached then
    die "repeated request was not served from the verdict cache";
  if payload_string rv <> payload_string rv2 then
    die "cached verdict differs from the cold evaluation";
  close_out to_serve;
  wait_exit_0 "basics" pid;
  close_in from_serve;
  (* The cache hit must be visible in the exported serve counters. *)
  let counter = counter_of_metrics "basics" metrics_file in
  if counter "serve_cache_hits" < 1 then
    die "serve_cache_hits = %d, expected >= 1" (counter "serve_cache_hits");
  if counter "serve_requests" < 3 then
    die "serve_requests = %d, expected >= 3" (counter "serve_requests");
  Sys.remove metrics_file;
  (* CLI equivalence: same requests through the argv front end must
     print the same bytes and exit with the same code. *)
  let cli_verify, code_verify = run_cli exe [ "verify"; "toy3" ] in
  if cli_verify <> response_text rv then
    die "verify: serve text differs from CLI stdout";
  if code_verify <> Service.Response.exit_code rv then
    die "verify: exit codes differ (cli %d, serve %d)" code_verify
      (Service.Response.exit_code rv);
  let cli_stats, code_stats = run_cli exe [ "stats"; "-m"; "dlx5" ] in
  if cli_stats <> response_text rs then
    die "stats: serve text differs from CLI stdout";
  if code_stats <> Service.Response.exit_code rs then
    die "stats: exit codes differ (cli %d, serve %d)" code_stats
      (Service.Response.exit_code rs)

(* ------------------------------------------------------------------ *)
(* Leg 2: SIGKILL mid-batch, journal replay                            *)
(* ------------------------------------------------------------------ *)

let crash_recovery_leg exe =
  let journal = Filename.temp_file "serve_smoke_journal" ".jsonl" in
  let metrics_file = Filename.temp_file "serve_smoke_recovery" ".json" in
  let batch1 = List.init 3 (fun i -> family_line ~id:(Printf.sprintf "a%d" i) i)
  and batch2 =
    List.init 3 (fun i -> family_line ~id:(Printf.sprintf "b%d" i) (i + 3))
  in
  (* Reference: a clean unjournaled run fixes the expected bytes. *)
  let reference = Hashtbl.create 8 in
  List.iter
    (fun ((line, _) as resp) ->
      Hashtbl.replace reference (require_id "reference" resp) line)
    (run_workload "reference" exe [ "-j"; "2" ] (batch1 @ batch2));
  (* Run A: journaled, with injected 250ms delays so batch 2 is still
     in flight — admitted, fsync'd, unanswered — when SIGKILL lands. *)
  let pid_a, to_a, from_a =
    spawn_serve exe
      [
        "-j"; "2"; "--journal"; journal; "--chaos"; "1,delay=1.0,delay_ms=250";
      ]
  in
  send_batch to_a batch1;
  let seen_a = List.map (fun _ -> recv from_a) batch1 in
  List.iter
    (fun ((line, _) as resp) ->
      let id = require_id "run A" resp in
      match Hashtbl.find_opt reference id with
      | Some expect when expect = line -> ()
      | Some _ -> die "run A: response %s differs from the clean run" id
      | None -> die "run A: unexpected response id %s" id)
    seen_a;
  send_batch to_a batch2;
  (* The admits hit the journal (one fsync) before evaluation starts,
     and every batch-2 task sleeps 250ms first: 150ms in, the batch is
     durable but unanswered. *)
  Unix.sleepf 0.15;
  Unix.kill pid_a Sys.sigkill;
  (match Unix.waitpid [] pid_a with
  | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
  | _ -> die "run A: expected death by SIGKILL");
  close_out to_a;
  close_in from_a;
  (* Run B: same journal, immediate EOF — everything it says comes
     from replay: completed entries verbatim, the killed batch
     re-evaluated.  Byte-identical to the clean run, every id exactly
     once, in journal order. *)
  let pid_b, to_b, from_b =
    spawn_serve exe
      [ "-j"; "2"; "--journal"; journal; "--metrics-out"; metrics_file ]
  in
  close_out to_b;
  let rec drain acc =
    match recv_opt from_b with
    | Some r -> drain (r :: acc)
    | None -> List.rev acc
  in
  let replayed = drain [] in
  wait_exit_0 "run B" pid_b;
  close_in from_b;
  let want_ids = [ "a0"; "a1"; "a2"; "b0"; "b1"; "b2" ] in
  let got_ids = List.map (require_id "run B") replayed in
  if got_ids <> want_ids then
    die "run B: replayed ids [%s], expected [%s]"
      (String.concat "; " got_ids)
      (String.concat "; " want_ids);
  List.iter
    (fun ((line, _) as resp) ->
      let id = require_id "run B" resp in
      if Hashtbl.find reference id <> line then
        die "run B: replayed response %s differs from the clean run" id)
    replayed;
  let replays = counter_of_metrics "run B" metrics_file "serve_journal_replayed" in
  if replays < List.length want_ids then
    die "serve_journal_replayed = %d, expected >= %d" replays
      (List.length want_ids);
  (* Run B shut down cleanly, so it must have truncated the journal. *)
  if (Unix.stat journal).Unix.st_size <> 0 then
    die "journal not truncated after a clean shutdown";
  Sys.remove journal;
  Sys.remove metrics_file

(* ------------------------------------------------------------------ *)
(* Leg 3: client disconnect fails only that connection                 *)
(* ------------------------------------------------------------------ *)

let disconnect_leg exe =
  let sock = Filename.temp_file "serve_smoke" ".sock" in
  Sys.remove sock;
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Unix.create_process exe
      [|
        exe; "serve"; "-j"; "2"; "--socket"; sock;
        "--chaos"; "5,delay=1.0,delay_ms=150";
      |]
      devnull Unix.stdout Unix.stderr
  in
  Unix.close devnull;
  let rec await_socket n =
    if not (Sys.file_exists sock) then
      if n = 0 then die "socket %s never appeared" sock
      else begin
        Unix.sleepf 0.05;
        await_socket (n - 1)
      end
  in
  await_socket 100;
  (* Client A sends a request and vanishes; the injected 150ms delay
     guarantees the server's response write lands on a closed peer
     (EPIPE) — which must cost this connection only. *)
  let a = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect a (Unix.ADDR_UNIX sock);
  let line = family_line ~id:"gone" 0 ^ "\n" in
  ignore (Unix.write_substring a line 0 (String.length line) : int);
  Unix.close a;
  (* Client B still gets full service afterwards. *)
  let b = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect b (Unix.ADDR_UNIX sock);
  let line = family_line ~id:"alive" 1 ^ "\n" in
  ignore (Unix.write_substring b line 0 (String.length line) : int);
  let from_b = Unix.in_channel_of_descr b in
  let _, resp = recv from_b in
  if resp.Service.Response.id <> Some "alive" then
    die "disconnect: wrong response id after a dropped client";
  (match resp.Service.Response.result with
  | Ok _ -> ()
  | Error e ->
    die "disconnect: error after a dropped client: %s"
      (Service.Response.error_message e));
  Unix.close b;
  (* And SIGTERM still shuts the daemon down cleanly. *)
  Unix.kill pid Sys.sigterm;
  wait_exit_0 "disconnect" pid;
  if Sys.file_exists sock then die "socket file not removed on shutdown"

(* ------------------------------------------------------------------ *)
(* Leg 4: chaos soak (--chaos SEED)                                    *)
(* ------------------------------------------------------------------ *)

let chaos_soak_leg exe seed =
  let n = 208 in
  let lines = List.init n (fun i -> family_line ~id:(Printf.sprintf "k%d" i) i) in
  let clean =
    List.map fst (run_workload "soak reference" exe [ "-j"; "2" ] lines)
  in
  let journal = Filename.temp_file "serve_smoke_soak" ".jsonl" in
  let metrics_file = Filename.temp_file "serve_smoke_soak" ".json" in
  let spec =
    Printf.sprintf
      "%d,crash=0.15,crash_budget=3,delay=0.2,delay_ms=1,wedge=0.1,wedge_ms=2,wedge_budget=4,kill=0.15,kill_budget=2"
      seed
  in
  let chaotic =
    run_workload "soak" exe
      [
        "-j"; "2"; "--retries"; "3"; "--chaos"; spec;
        "--journal"; journal; "--metrics-out"; metrics_file;
      ]
      lines
  in
  if List.length chaotic <> n then
    die "soak: %d responses for %d requests" (List.length chaotic) n;
  List.iteri
    (fun i (expect, ((line, _) as resp)) ->
      let id = require_id "soak" resp in
      if id <> Printf.sprintf "k%d" i then
        die "soak: response %d has id %s (lost or duplicated work)" i id;
      if line <> expect then
        die "soak: response %s differs from the clean run under chaos" id)
    (List.combine clean chaotic);
  (* The injector really fired: kills surfaced as healed restarts. *)
  let restarts = counter_of_metrics "soak" metrics_file "pool_restarts" in
  if restarts < 1 then die "soak: pool_restarts = %d, expected >= 1" restarts;
  Sys.remove journal;
  Sys.remove metrics_file

let () =
  let exe, chaos_seed =
    match Array.to_list Sys.argv with
    | [ _; exe ] -> (exe, None)
    | [ _; exe; "--chaos"; seed ] -> (
      match int_of_string_opt seed with
      | Some s -> (exe, Some s)
      | None -> die "bad --chaos seed %s" seed)
    | _ -> die "usage: serve_smoke PIPEGEN_EXE [--chaos SEED]"
  in
  basics_leg exe;
  crash_recovery_leg exe;
  disconnect_leg exe;
  Option.iter (chaos_soak_leg exe) chaos_seed;
  print_endline
    (match chaos_seed with
    | Some seed ->
      Printf.sprintf
        "serve_smoke: OK (order, cache hit, counters, CLI equivalence, \
         crash recovery, disconnect containment, chaos soak seed %d)"
        seed
    | None ->
      "serve_smoke: OK (order, cache hit, counters, CLI equivalence, crash \
       recovery, disconnect containment)")
