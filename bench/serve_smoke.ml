(* End-to-end smoke of [pipegen serve] (the @check serve leg).

   Drives the real binary over pipes: a small request batch goes
   through the serve loop, and the responses must (a) come back in
   input order, (b) match the direct CLI invocations byte for byte —
   text and exit code — since both front ends share one handler, and
   (c) answer a repeated request from the content-addressed verdict
   cache with a bit-identical payload, observable in the exported
   serve counters. *)

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("serve_smoke: FAILED: " ^ s);
      exit 1)
    fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Run a CLI subcommand, capturing stdout and the exit code. *)
let run_cli exe args =
  let cmd = String.concat " " (List.map Filename.quote (exe :: args)) in
  let ic = Unix.open_process_in cmd in
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  match Unix.close_process_in ic with
  | Unix.WEXITED code -> (Buffer.contents buf, code)
  | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> die "CLI `%s` was killed" cmd

let payload_string (r : Service.Response.t) =
  match r.Service.Response.result with
  | Ok p -> Obs.Json.to_string ~minify:true (Service.Response.payload_to_json p)
  | Error e -> die "unexpected error response: %s" (Service.Response.error_message e)

let response_text (r : Service.Response.t) =
  match r.Service.Response.result with
  | Ok p -> Service.Response.text p
  | Error e -> die "unexpected error response: %s" (Service.Response.error_message e)

let () =
  let exe =
    if Array.length Sys.argv < 2 then die "usage: serve_smoke PIPEGEN_EXE"
    else Sys.argv.(1)
  in
  let metrics_file = Filename.temp_file "serve_smoke" ".json" in
  (* cloexec: the child must not inherit the parent-side pipe ends, or
     closing [to_serve] would never deliver EOF (the child itself would
     still hold a write end of its own stdin). *)
  let serve_stdin_r, serve_stdin_w = Unix.pipe ~cloexec:true () in
  let serve_stdout_r, serve_stdout_w = Unix.pipe ~cloexec:true () in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "-j"; "2"; "--metrics-out"; metrics_file |]
      serve_stdin_r serve_stdout_w Unix.stderr
  in
  Unix.close serve_stdin_r;
  Unix.close serve_stdout_w;
  let to_serve = Unix.out_channel_of_descr serve_stdin_w in
  let from_serve = Unix.in_channel_of_descr serve_stdout_r in
  let send line =
    output_string to_serve (line ^ "\n");
    flush to_serve
  in
  let recv () =
    match input_line from_serve with
    | line -> (
      match Service.Response.of_string line with
      | Ok r -> r
      | Error msg -> die "undecodable response %S: %s" line msg)
    | exception End_of_file -> die "serve closed the stream early"
  in
  (* Batch 1: two distinct requests; responses must be in input order. *)
  send {|{"pipegen":1,"id":"v1","kind":"verify","machine":"toy3"}|};
  send {|{"pipegen":1,"id":"s1","kind":"stats","machine":"dlx5"}|};
  let rv = recv () in
  let rs = recv () in
  if rv.Service.Response.id <> Some "v1" || rs.Service.Response.id <> Some "s1"
  then die "responses out of input order";
  if rv.Service.Response.cached then die "first verify claims to be cached";
  (* Batch 2: repeat the verify — must be a verdict-cache hit with a
     bit-identical payload. *)
  send {|{"pipegen":1,"id":"v2","kind":"verify","machine":"toy3"}|};
  let rv2 = recv () in
  if not rv2.Service.Response.cached then
    die "repeated request was not served from the verdict cache";
  if payload_string rv <> payload_string rv2 then
    die "cached verdict differs from the cold evaluation";
  close_out to_serve;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> die "serve exited with %d" n
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> die "serve was killed");
  close_in from_serve;
  (* The cache hit must be visible in the exported serve counters. *)
  let counters =
    match Obs.Json.parse (read_file metrics_file) with
    | Error msg -> die "bad metrics file: %s" msg
    | Ok j -> (
      match Obs.Json.member "counters" j with
      | Some c -> c
      | None -> die "metrics file has no counters")
  in
  let counter name =
    match Option.bind (Obs.Json.member name counters) Obs.Json.to_int_opt with
    | Some v -> v
    | None -> die "metrics file has no %s counter" name
  in
  if counter "serve_cache_hits" < 1 then
    die "serve_cache_hits = %d, expected >= 1" (counter "serve_cache_hits");
  if counter "serve_requests" < 3 then
    die "serve_requests = %d, expected >= 3" (counter "serve_requests");
  Sys.remove metrics_file;
  (* CLI equivalence: same requests through the argv front end must
     print the same bytes and exit with the same code. *)
  let cli_verify, code_verify = run_cli exe [ "verify"; "toy3" ] in
  if cli_verify <> response_text rv then
    die "verify: serve text differs from CLI stdout";
  if code_verify <> Service.Response.exit_code rv then
    die "verify: exit codes differ (cli %d, serve %d)" code_verify
      (Service.Response.exit_code rv);
  let cli_stats, code_stats = run_cli exe [ "stats"; "-m"; "dlx5" ] in
  if cli_stats <> response_text rs then
    die "stats: serve text differs from CLI stdout";
  if code_stats <> Service.Response.exit_code rs then
    die "stats: exit codes differ (cli %d, serve %d)" code_stats
      (Service.Response.exit_code rs);
  print_endline
    "serve_smoke: OK (order, cache hit, counters, CLI equivalence)"
