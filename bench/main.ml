(* Benchmark harness: regenerates every table and figure of the paper
   (see DESIGN.md's experiment index) and times the core computation of
   each experiment with Bechamel.

   Experiments:
     T1  Table 1    sequential round-robin scheduling
     F1  Figure 1   register-file write interface
     F2  Figure 2   generated forwarding hardware for the 5-stage DLX
     C1  §4.2       case study: pipelined DLX correctness + CPI
     S1  §5         speculation: branch prediction and precise interrupts
     P1  §6         generated proof obligations, discharged
     P2  §6/rel.wk. symbolic proofs: BDD equivalence + co-simulation
     E3  §4.2       mux chain vs find-first-one + balanced tree
     E4  (implicit) sequential vs pipelined speedup
     E5  §4         forwarding vs interlock-only
     E6  §5         branch prediction CPI sweep
     E7  §4.2       pipeline-depth sweep on the parametric machine
     E8  §3         external stalls: memory wait-state sweep
     E9  step 1     re-partitioning: where to split the DLX *)

let section id title =
  Format.printf "@.==================================================@.";
  Format.printf "%s: %s@." id title;
  Format.printf "==================================================@."

(* Machine-readable results, written to BENCH_last.json (scratch) at
   the end of the run and re-read through the parser as a self-check.
   [--rebaseline] retargets the committed BENCH_pipeline.json — the
   only way the baseline is ever rewritten. *)
let export_entries : Obs.Export.entry list ref = ref []
let add_entry e = export_entries := e :: !export_entries

let export_path = ref "BENCH_last.json"

let write_export () =
  let entries = List.rev !export_entries in
  Obs.Export.write_file ~path:!export_path entries;
  match Obs.Export.read_file ~path:!export_path with
  | Error msg ->
    Format.printf "BENCH export does NOT round-trip: %s@." msg;
    exit 1
  | Ok back ->
    assert (back = entries);
    Format.printf "@.wrote %s (%d entries, round-trip checked)@." !export_path
      (List.length entries)

(* ------------------------------------------------------------------ *)
(* T1: Table 1                                                         *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "T1" "Table 1 - sequential scheduling of a 3-stage pipeline";
  let wave = Machine.Seqsem.ue_table ~n_stages:3 ~cycles:9 in
  Format.printf "%a" Hw.Wave.pp wave;
  Format.printf
    "(paper: ue_0, ue_1, ue_2 enabled round robin; matches exactly)@."

(* ------------------------------------------------------------------ *)
(* F1: Figure 1                                                        *)
(* ------------------------------------------------------------------ *)

let figure1 () =
  section "F1" "Figure 1 - register file write interface (alpha = 2)";
  (* A file of four registers: the write needs Din (f^k_R), the write
     address Aw (f^k_Rwa, alpha = 2 bits) and the write enable
     (f^k_Rwe), gated with the update enable. *)
  let open Hw.Expr in
  let din = input "Din" 8 in
  let aw = input "Aw" 2 in
  let we = ( &&: ) (input "f_k_Rwe" 1) (input "ue_k" 1) in
  Format.printf "register file R0..R3 (four registers, alpha = 2):@.";
  Format.printf "  Din (data in)      = %a  (from f_k)@." Hw.Verilog.pp_expr din;
  Format.printf "  Aw  (write address)= %a  (from f_k_Rwa, %d bits)@."
    Hw.Verilog.pp_expr aw (width aw);
  Format.printf "  we  (write enable) = %a  (ce = f_k_Rwe AND ue_k)@."
    Hw.Verilog.pp_expr we;
  let cost =
    Hw.Cost.of_expr
      (File_read { file = "R"; data_width = 8; addr = input "Ar" 2 })
  in
  Format.printf "  read port cost: %a@." Hw.Cost.pp cost;
  (* The same structure as used by the toy machine's REG write. *)
  let m = Core.Toy.machine ~program:Core.Toy.default_program in
  match Machine.Spec.write_to m "REG" with
  | Some (k, w) ->
    Format.printf
      "toy machine instance: stage %d writes REG with Din = %a, Aw = %a@." k
      Hw.Verilog.pp_expr w.Machine.Spec.value
      (Format.pp_print_option Hw.Verilog.pp_expr)
      w.Machine.Spec.wr_addr
  | None -> ()

(* ------------------------------------------------------------------ *)
(* F2: Figure 2                                                        *)
(* ------------------------------------------------------------------ *)

let dlx_transform ?options ?(variant = Dlx.Seq_dlx.Base) (p : Dlx.Progs.t) =
  Dlx.Seq_dlx.transform ?options ~data:p.Dlx.Progs.data variant
    ~program:(Dlx.Progs.program p)

let figure2 () =
  section "F2" "Figure 2 - generated forwarding hardware for the 5-stage DLX";
  let tr = dlx_transform (Dlx.Progs.fib 10) in
  Format.printf "%a" Pipeline.Report.pp_inventory tr;
  Format.printf
    "@.(paper figure 2: per GPR operand, hit signals for stages 2..4,@.";
  Format.printf
    " one =? tester each against GPRwa.2/.3/.4 gated by full_2/3/4,@.";
  Format.printf
    " a mux chain over C:2 / C:3 / Din and the GPR read port - the@.";
  Format.printf
    " generated structure above matches: 3 hits, 3 testers, 3 muxes.)@.";
  (* Also count the forwarding registers and valid bits. *)
  let qv =
    List.filter
      (fun (r : Machine.Spec.register) ->
        String.length r.Machine.Spec.reg_name >= 4
        && String.sub r.Machine.Spec.reg_name 0 4 = "$Qv_")
      tr.Pipeline.Transform.machine.Machine.Spec.registers
  in
  Format.printf "synthesized valid bits (Qv): %s@."
    (String.concat ", "
       (List.map
          (fun (r : Machine.Spec.register) -> r.Machine.Spec.reg_name)
          qv))

(* ------------------------------------------------------------------ *)
(* C1: the case study                                                  *)
(* ------------------------------------------------------------------ *)

let sim_kernel ?options ?(variant = Dlx.Seq_dlx.Base) (p : Dlx.Progs.t) =
  let config =
    {
      Workload.Sweep.default with
      Workload.Sweep.variant;
      options =
        (match options with
        | Some o -> o
        | None -> Pipeline.Fwd_spec.default_options);
    }
  in
  Workload.Sweep.sim_of_program ~config p

let run_kernel ?options ?variant (p : Dlx.Progs.t) =
  let sim = sim_kernel ?options ?variant p in
  let report = Workload.Sim.verify sim in
  ( report,
    Workload.Sim.stats_row ~label:p.Dlx.Progs.prog_name sim
      report.Proof_engine.Consistency.stats )

let case_study ?(kernels = Dlx.Progs.all_kernels) () =
  section "C1" "Case study - pipelined DLX: correctness and CPI";
  let rows =
    List.map
      (fun p ->
        let sim = sim_kernel p in
        let report = Workload.Sim.verify sim in
        let row =
          Workload.Sim.stats_row ~label:p.Dlx.Progs.prog_name sim
            report.Proof_engine.Consistency.stats
        in
        if not (Proof_engine.Consistency.ok report) then begin
          Format.printf "INCONSISTENT on %s!@." p.Dlx.Progs.prog_name;
          exit 1
        end;
        (* CPI breakdown via hazard attribution for the export; the
           attribution run shares the kernel's compiled plan. *)
        let _, summary = Workload.Sim.attribute sim in
        let d = Obs.Hazard.decompose summary in
        add_entry
          (Obs.Export.entry
             ~cpi:row.Workload.Stats.cpi
             ~instructions:row.Workload.Stats.instructions
             ~cycles:row.Workload.Stats.cycles
             ~breakdown:d.Obs.Hazard.terms
             ("C1." ^ p.Dlx.Progs.prog_name));
        row)
      kernels
  in
  Format.printf "%a" Workload.Stats.pp_table rows;
  Format.printf "geomean CPI %.3f (sequential machine: CPI = 5.000)@."
    (Workload.Stats.geomean_cpi rows);
  Format.printf "all kernels data consistent and live.@."

(* ------------------------------------------------------------------ *)
(* S1: speculation                                                     *)
(* ------------------------------------------------------------------ *)

let speculation () =
  section "S1"
    "Speculation (paper 5) - wrong guesses cost cycles, never results";
  Format.printf "branch prediction (sequential-fetch guess in stage 0):@.";
  Format.printf "  %-16s %10s %14s %10s@." "kernel" "base CPI" "predicted CPI"
    "rollbacks";
  List.iter
    (fun p ->
      let rb, base = run_kernel p in
      let rp, bp = run_kernel ~variant:Dlx.Seq_dlx.Branch_predict p in
      assert (Proof_engine.Consistency.ok rb && Proof_engine.Consistency.ok rp);
      Format.printf "  %-16s %10.2f %14.2f %10d@." p.Dlx.Progs.prog_name
        base.Workload.Stats.cpi bp.Workload.Stats.cpi
        bp.Workload.Stats.rollbacks)
    [ Dlx.Progs.fib 10; Dlx.Progs.branch_heavy 8; Dlx.Progs.memcpy 8 ];
  Format.printf
    "@.precise interrupts (speculate: no interrupt; resolve in WB):@.";
  let p = Dlx.Progs.overflow_trap in
  let report, row =
    run_kernel ~variant:(Dlx.Seq_dlx.With_interrupts { sisr = 8 }) p
  in
  assert (Proof_engine.Consistency.ok report);
  Format.printf
    "  %s: %d instructions, %d cycles, %d rollbacks (JISR), consistent@."
    p.Dlx.Progs.prog_name row.Workload.Stats.instructions
    row.Workload.Stats.cycles row.Workload.Stats.rollbacks

(* ------------------------------------------------------------------ *)
(* P1: the generated proof                                             *)
(* ------------------------------------------------------------------ *)

let proof () =
  section "P1" "Generated proof (paper 6) - obligations and discharge";
  let p = Dlx.Progs.fib 10 in
  let tr = dlx_transform p in
  let reference =
    Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
      ~program:(Dlx.Progs.program p) ~instructions:p.Dlx.Progs.dyn_instructions
  in
  let obs =
    Proof_engine.Obligation.discharge_all
      ~max_instructions:p.Dlx.Progs.dyn_instructions ~reference tr
  in
  Format.printf "%a" Proof_engine.Obligation.pp obs;
  Format.printf "all discharged: %b@."
    (Proof_engine.Obligation.all_discharged obs);
  let theory = Proof_engine.Pvs_gen.theory tr obs in
  Format.printf "PVS theory: %d lines (emit with `pipegen proof dlx5`)@."
    (List.length (String.split_on_char '\n' theory))

(* ------------------------------------------------------------------ *)
(* P2: symbolic verification                                           *)
(* ------------------------------------------------------------------ *)

let symbolic_proofs () =
  section "P2" "Symbolic proofs - BDD equivalence and co-simulation";
  (* The generated DLX selection networks, chain vs tree, for every
     input valuation. *)
  let p = Dlx.Progs.fib 5 in
  let g impl =
    let tr =
      Dlx.Seq_dlx.transform
        ~options:{ Pipeline.Fwd_spec.mode = Pipeline.Fwd_spec.Full; impl }
        ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
        ~program:(Dlx.Progs.program p)
    in
    List.assoc "$g_1_GPRa" tr.Pipeline.Transform.signals
  in
  Format.printf "  DLX GPRa network, chain vs tree: %a@."
    Proof_engine.Equiv.pp_result
    (Proof_engine.Equiv.check (g Hw.Circuits.Chain) (g Hw.Circuits.Tree));
  (* Symbolic co-simulation: all initial data at once. *)
  let sym label symbolic instructions tr =
    Format.printf "  %-26s %a@." label Proof_engine.Symsim.pp_outcome
      (Proof_engine.Symsim.check ~symbolic ~instructions tr)
  in
  sym "toy3, all 2^256 states:" [ "REG" ] 6
    (Core.Toy.transform ~program:Core.Toy.default_program ());
  sym "elastic n=6, late chain:" [ "REG" ] 8
    (Core.Elastic.transform ~n:6
       ~program:(Core.Elastic.chain_program ~late:true ~length:8)
       ());
  let k = Dlx.Progs.hazard_dependent_chain 8 in
  sym "dlx5, all 2^1024 GPRs:" [ "GPR" ] 9
    (Dlx.Seq_dlx.transform ~data:k.Dlx.Progs.data Dlx.Seq_dlx.Base
       ~program:(Dlx.Progs.program k));
  Format.printf
    "(per-retirement data consistency established for every initial@.";
  Format.printf
    " register-file content simultaneously - the symbolic-simulation@.";
  Format.printf " style of the related work the paper cites.)@."

(* ------------------------------------------------------------------ *)
(* E3: mux chain vs balanced tree                                      *)
(* ------------------------------------------------------------------ *)

let mux_sweep () =
  section "E3"
    "Forwarding mux structures - linear chain vs find-first-one + tree";
  let points =
    Pipeline.Mux_impl.sweep ~depths:[ 2; 3; 4; 6; 8; 12; 16; 24; 32 ]
      ~data_width:32
  in
  Format.printf "%a" Pipeline.Mux_impl.pp_sweep points;
  Format.printf
    "(paper 4.2: \"this hardware gets slow with larger pipelines.  With@.";
  Format.printf
    " larger pipelines, one can use a find first one circuit and a@.";
  Format.printf
    " balanced tree of multiplexers\" - the chain depth grows linearly,@.";
  Format.printf " the tree depth logarithmically; crossover near 4 sources.)@."

(* ------------------------------------------------------------------ *)
(* E4: sequential vs pipelined                                         *)
(* ------------------------------------------------------------------ *)

let speedup () =
  section "E4" "Sequential vs pipelined DLX - the point of pipelining";
  Format.printf "  %-16s %8s %12s %12s %8s@." "kernel" "instr" "seq cycles"
    "pipe cycles" "speedup";
  let speedups =
    List.map
      (fun p ->
        let _, row = run_kernel p in
        let seq_cycles = 5 * row.Workload.Stats.instructions in
        let s =
          float_of_int seq_cycles /. float_of_int row.Workload.Stats.cycles
        in
        Format.printf "  %-16s %8d %12d %12d %8.2f@." p.Dlx.Progs.prog_name
          row.Workload.Stats.instructions seq_cycles row.Workload.Stats.cycles
          s;
        s)
      Dlx.Progs.all_kernels
  in
  let geo =
    exp
      (List.fold_left (fun a s -> a +. log s) 0.0 speedups
      /. float_of_int (List.length speedups))
  in
  Format.printf "geomean speedup: %.2fx (ideal for 5 stages: 5.00x)@." geo

(* ------------------------------------------------------------------ *)
(* E5: forwarding vs interlock-only                                    *)
(* ------------------------------------------------------------------ *)

let interlock_only_options =
  {
    Pipeline.Fwd_spec.mode = Pipeline.Fwd_spec.Interlock_only;
    impl = Hw.Circuits.Chain;
  }

let forwarding_value () =
  section "E5" "Forwarding vs interlock-only (stall-only baseline)";
  Format.printf "  %-16s %10s %14s@." "kernel" "fwd CPI" "interlock CPI";
  List.iter
    (fun p ->
      let _, fwd = run_kernel p in
      let _, il = run_kernel ~options:interlock_only_options p in
      Format.printf "  %-16s %10.2f %14.2f@." p.Dlx.Progs.prog_name
        fwd.Workload.Stats.cpi il.Workload.Stats.cpi)
    Dlx.Progs.all_kernels;
  Format.printf "@.dependency-bias sweep (random ALU programs, length 60):@.";
  Format.printf "  %-6s %10s %14s@." "bias" "fwd CPI" "interlock CPI";
  List.iter
    (fun bias ->
      let p =
        Workload.Gen.generate ~seed:3 ~length:60
          (Workload.Gen.alu_only ~dependency_bias:bias)
      in
      let fwd = Workload.Sweep.run_program p in
      let il =
        Workload.Sweep.run_program
          ~config:
            {
              Workload.Sweep.default with
              Workload.Sweep.options = interlock_only_options;
            }
          p
      in
      Format.printf "  %-6.2f %10.2f %14.2f@." bias fwd.Workload.Stats.cpi
        il.Workload.Stats.cpi)
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ]

(* ------------------------------------------------------------------ *)
(* E6: branch prediction sweep                                         *)
(* ------------------------------------------------------------------ *)

let branch_sweep () =
  section "E6" "Branch prediction - CPI vs fraction of taken branches";
  Format.printf "  %-12s %12s %16s %10s@." "taken frac" "base CPI"
    "predicted CPI" "rollbacks";
  List.iter
    (fun tf ->
      let p =
        Workload.Gen.generate ~seed:9 ~length:80
          (Workload.Gen.branch_heavy ~taken_frac:tf)
      in
      let base = Workload.Sweep.run_program p in
      let bp =
        Workload.Sweep.run_program
          ~config:
            {
              Workload.Sweep.default with
              Workload.Sweep.variant = Dlx.Seq_dlx.Branch_predict;
            }
          p
      in
      Format.printf "  %-12.2f %12.2f %16.2f %10d@." tf
        base.Workload.Stats.cpi bp.Workload.Stats.cpi
        bp.Workload.Stats.rollbacks)
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
  Format.printf
    "(sequential-fetch prediction: each taken branch beyond the delay@.";
  Format.printf
    " slot costs one squash; the delay-slot base machine is the oracle.)@."

(* ------------------------------------------------------------------ *)
(* E7: pipeline-depth sweep                                            *)
(* ------------------------------------------------------------------ *)

let depth_sweep () =
  section "E7" "Larger pipelines - the depth-parametric machine family";
  Format.printf "  %-6s %10s %14s %12s %12s@." "depth" "fwd srcs"
    "fast-chain CPI" "late CPI" "indep CPI";
  List.iter
    (fun n ->
      let cpi program =
        let tr = Core.Elastic.transform ~n ~program () in
        let report =
          Proof_engine.Consistency.check
            ~max_instructions:(List.length program) tr
        in
        if not (Proof_engine.Consistency.ok report) then begin
          Format.printf "INCONSISTENT at depth %d@." n;
          exit 1
        end;
        Pipeline.Pipesem.cpi report.Proof_engine.Consistency.stats
      in
      let sources = n - 2 in
      Format.printf "  %-6d %10d %14.2f %12.2f %12.2f@." n sources
        (cpi (Core.Elastic.chain_program ~late:false ~length:24))
        (cpi (Core.Elastic.chain_program ~late:true ~length:24))
        (cpi (Core.Elastic.independent_program ~length:24)))
    [ 3; 4; 5; 6; 8; 10 ];
  Format.printf
    "(all verified; forwarding keeps dependent fast chains at CPI ~1 at@.";
  Format.printf
    " every depth, late-result dependencies stall n-4 cycles each.)@."

(* ------------------------------------------------------------------ *)
(* E8: external stalls (slow memory)                                   *)
(* ------------------------------------------------------------------ *)

let memory_latency_sweep () =
  section "E8" "External stalls (paper 3) - memory wait-state sweep";
  Format.printf
    "  %-22s %10s %10s %10s@." "memory model" "memcpy CPI" "bsort CPI"
    "fib CPI";
  let kernels =
    [ Dlx.Progs.memcpy 8; Dlx.Progs.bubble_sort [ 9; 3; 7; 1; 8; 2 ];
      Dlx.Progs.fib 10 ]
  in
  List.iter
    (fun (label, ext) ->
      let cpis =
        List.map
          (fun p ->
            let config =
              { Workload.Sweep.default with Workload.Sweep.ext } in
            (Workload.Sweep.run_program ~config p).Workload.Stats.cpi)
          kernels
      in
      match cpis with
      | [ a; b; c ] ->
        Format.printf "  %-22s %10.2f %10.2f %10.2f@." label a b c
      | _ -> ())
    [
      ("ideal", None);
      ("wait 1 every 8", Some (Workload.Sweep.memory_wait_states ~every:8 ~wait:1));
      ("wait 1 every 4", Some (Workload.Sweep.memory_wait_states ~every:4 ~wait:1));
      ("wait 2 every 4", Some (Workload.Sweep.memory_wait_states ~every:4 ~wait:2));
      ("wait 3 every 4", Some (Workload.Sweep.memory_wait_states ~every:4 ~wait:3));
    ];
  Format.printf
    "(every run verified: the ext_k stall path never affects results,@.";
  Format.printf " only cycle counts - the stall engine absorbs wait states.)@."

(* ------------------------------------------------------------------ *)
(* E9: re-partitioning the DLX (mechanized step 1)                     *)
(* ------------------------------------------------------------------ *)

let retime_sweep () =
  section "E9" "Re-partitioning - splitting the DLX at each boundary";
  Format.printf "  %-24s %8s %8s %6s %10s@." "machine" "stages" "cycles" "CPI"
    "verified";
  let p = Dlx.Progs.bubble_sort [ 9; 3; 7; 1; 8; 2 ] in
  let program = Dlx.Progs.program p in
  let run label m =
    let tr =
      Pipeline.Transform.run ~hints:(Dlx.Seq_dlx.hints Dlx.Seq_dlx.Base) m
    in
    let report =
      Proof_engine.Consistency.check
        ~max_instructions:p.Dlx.Progs.dyn_instructions tr
    in
    Format.printf "  %-24s %8d %8d %6.2f %10s@." label
      m.Machine.Spec.n_stages
      report.Proof_engine.Consistency.stats.Pipeline.Pipesem.cycles
      (Pipeline.Pipesem.cpi report.Proof_engine.Consistency.stats)
      (if Proof_engine.Consistency.ok report then "yes" else "NO")
  in
  let base = Dlx.Seq_dlx.machine ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base ~program in
  run "dlx5 (base)" base;
  run "split IF/ID" (Machine.Retime.insert_passthrough base ~at:1);
  run "split ID/EX" (Machine.Retime.insert_passthrough base ~at:2);
  run "split EX/MEM" (Machine.Retime.insert_passthrough base ~at:3);
  run "split MEM/WB" (Machine.Retime.insert_passthrough base ~at:4);
  run "2-cycle memory (x2)" (Machine.Retime.deepen base ~at:3 ~times:2);
  Format.printf
    "(stage insertion is mechanical: bridges extend the forwarding@.";
  Format.printf
    " chains, the tool re-synthesizes the extra sources and valid@.";
  Format.printf
    " bits, and every variant is re-verified.  Splitting after the@.";
  Format.printf
    " consumers of a value is cheap; splitting between producer and@.";
  Format.printf " consumer costs interlock stalls.)@."

(* ------------------------------------------------------------------ *)
(* PERF: compiled plans vs the tree-walking interpreter                *)
(* ------------------------------------------------------------------ *)

(* Time [f] by repetition until [budget] seconds of processor time
   have elapsed (at least [min_runs] runs), returning ns/run.  The
   repetition count is wall-clock dependent, so the work counters are
   off for the duration — the WORK.* totals of a run must not vary
   with host speed. *)
let time_ns_per_run ?(budget = 0.2) ?(min_runs = 3) f =
  Obs.Counters.with_disabled @@ fun () ->
  let t0 = Sys.time () in
  let runs = ref 0 in
  while !runs < min_runs || Sys.time () -. t0 < budget do
    ignore (f ());
    incr runs
  done;
  (Sys.time () -. t0) *. 1e9 /. float_of_int !runs

(* Wall-clock variant for parallel work: [Sys.time] sums the processor
   time of every domain, which hides any parallel speedup, so the
   pool-vs-serial comparison uses [Unix.gettimeofday]. *)
let time_wall_ns ?(budget = 0.2) ?(min_runs = 2) f =
  Obs.Counters.with_disabled @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let runs = ref 0 in
  while !runs < min_runs || Unix.gettimeofday () -. t0 < budget do
    ignore (f ());
    incr runs
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int !runs

let perf_compiled () =
  section "PERF"
    "Compiled evaluation plans vs interpreted simulation (same driver loop)";
  Format.printf "  %-16s %12s %14s %14s %9s %12s@." "kernel" "cycles"
    "interp ns/run" "compiled ns/run" "speedup" "Mcycles/s";
  let speedups =
    List.map
      (fun p ->
        let sim = sim_kernel p in
        let compiled = (Workload.Sim.run sim).Pipeline.Pipesem.stats in
        let interpreted =
          (Workload.Sim.run_interpreted sim).Pipeline.Pipesem.stats
        in
        (* The two engines drive the same cycle loop: every statistic
           must agree bit for bit, or the compiler is wrong. *)
        if compiled <> interpreted then begin
          Format.printf "STATS DIVERGE on %s (compiled vs interpreted)!@."
            p.Dlx.Progs.prog_name;
          exit 1
        end;
        let ns_c = time_ns_per_run (fun () -> Workload.Sim.run sim) in
        let ns_i =
          time_ns_per_run (fun () -> Workload.Sim.run_interpreted sim)
        in
        let speedup = ns_i /. ns_c in
        let mcps = float_of_int compiled.Pipeline.Pipesem.cycles /. ns_c *. 1e3 in
        Format.printf "  %-16s %12d %14.0f %14.0f %8.2fx %12.2f@."
          p.Dlx.Progs.prog_name compiled.Pipeline.Pipesem.cycles ns_i ns_c
          speedup mcps;
        let counts label ns =
          add_entry
            (Obs.Export.entry ~ns_per_run:ns
               ~cpi:(Pipeline.Pipesem.cpi compiled)
               ~instructions:compiled.Pipeline.Pipesem.retired
               ~cycles:compiled.Pipeline.Pipesem.cycles
               (Printf.sprintf "PERF.%s_sim_%s" label p.Dlx.Progs.prog_name))
        in
        counts "compiled" ns_c;
        counts "interpreted" ns_i;
        speedup)
      (* Long enough that cycle throughput dominates per-run setup
         (state creation, plan binding). *)
      [
        Workload.Gen.generate ~seed:7 ~length:400 Workload.Gen.typical;
        Workload.Gen.generate ~seed:11 ~length:400
          (Workload.Gen.alu_only ~dependency_bias:0.6);
      ]
  in
  let geo =
    exp
      (List.fold_left (fun a s -> a +. log s) 0.0 speedups
      /. float_of_int (List.length speedups))
  in
  add_entry (Obs.Export.entry ~ns_per_run:geo "PERF.speedup_geomean");
  Format.printf
    "geomean speedup %.2fx (identical cycles, retirements and hazard counts)@."
    geo

(* ------------------------------------------------------------------ *)
(* PERF-PAR: domain-pool sweep throughput vs serial                    *)
(* ------------------------------------------------------------------ *)

let perf_parallel ~jobs () =
  section "PERF-PAR"
    (Printf.sprintf
       "Parallel sweep throughput - domain pool (-j %d) vs serial" jobs);
  let biases = [ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 ] in
  let sweep ?pool () =
    Workload.Sweep.dependency_sweep ?pool ~biases ~length:400 ~seed:7 ()
  in
  let serial = sweep () in
  Exec.Pool.with_pool ~size:jobs @@ fun pool ->
  let parallel = sweep ~pool () in
  (* The determinism contract, enforced: every sweep row (CPI, cycles,
     hazard and squash counts, ...) must match the serial run bit for
     bit at any pool size. *)
  if serial <> parallel then begin
    Format.printf "PARALLEL SWEEP ROWS DIVERGE from serial (-j %d)!@." jobs;
    exit 1
  end;
  Format.printf "  %d sweep points, rows bit-identical at -j %d@."
    (List.length serial) jobs;
  List.iter
    (fun (bias, (row : Workload.Stats.row)) ->
      add_entry
        (Obs.Export.entry ~cpi:row.Workload.Stats.cpi
           ~instructions:row.Workload.Stats.instructions
           ~cycles:row.Workload.Stats.cycles
           (Printf.sprintf "PERF.par_sweep_bias_%.0f" (bias *. 100.))))
    serial;
  let ns_serial = time_wall_ns (fun () -> sweep ()) in
  Exec.Pool.reset_stats pool;
  let ns_parallel = time_wall_ns (fun () -> sweep ~pool ()) in
  let util = Exec.Pool.stats pool in
  let speedup = ns_serial /. ns_parallel in
  Format.printf
    "  serial %.2f ms/sweep, -j %d %.2f ms/sweep: speedup %.2fx@."
    (ns_serial /. 1e6) jobs (ns_parallel /. 1e6) speedup;
  List.iter
    (fun (s : Exec.Pool.domain_stats) ->
      Format.printf "  worker %d: %4d tasks, %8.3f s busy@." s.Exec.Pool.worker
        s.Exec.Pool.tasks s.Exec.Pool.busy_s)
    util;
  (* Per-domain utilization guard: the sharded fan-out must actually
     spread the shards.  With real parallelism available (at least two
     cores backing at least two pool slots), at least two workers must
     have executed tasks; with a size-1 pool everything runs inline on
     the submitting thread. *)
  let cores = Domain.recommended_domain_count () in
  let expected = min jobs cores in
  let active =
    List.length
      (List.filter (fun (s : Exec.Pool.domain_stats) -> s.Exec.Pool.tasks > 0)
         util)
  in
  if expected >= 2 && active < 2 then begin
    Format.printf
      "PARALLEL SWEEP UNDER-UTILIZED: %d of %d workers ran tasks (-j %d, %d \
       cores)@."
      active jobs jobs cores;
    exit 1
  end;
  if jobs = 1 && active <> 1 then begin
    Format.printf "size-1 pool ran tasks off the submitting thread?!@.";
    exit 1
  end;
  (* Speedup floor, scaled to the parallelism this host can actually
     deliver: a sharded sweep over [jobs] slots backed by real cores
     should approach [jobs]x; demand a conservative fraction.  With
     [jobs = 1] the pooled run does identical semantic work plus
     dispatch — > 1x is physically impossible, so the floor only
     bounds the pool overhead.  An oversubscribed pool
     ([jobs > cores], e.g. -j 4 on this 1-core bench host) pays a
     host-dependent contention penalty that is not a code regression:
     reported, not gated. *)
  if jobs > cores then
    Format.printf
      "  speedup gate: skipped (-j %d oversubscribes %d core%s; %.2fx is a \
       host artifact)@."
      jobs cores
      (if cores = 1 then "" else "s")
      speedup
  else begin
    let floor =
      if expected >= 4 then 1.5 else if expected >= 2 then 1.1 else 0.85
    in
    Format.printf "  speedup gate: %.2fx >= %.2fx floor (-j %d on %d core%s)@."
      speedup floor jobs cores
      (if cores = 1 then "" else "s");
    if speedup < floor then begin
      Format.printf "PARALLEL SWEEP SPEEDUP REGRESSED below the floor@.";
      exit 1
    end
  end;
  add_entry (Obs.Export.entry ~ns_per_run:ns_serial "PERF.sweep_serial");
  add_entry
    (Obs.Export.entry ~ns_per_run:ns_parallel
       ~breakdown:
         (List.map
            (fun (s : Exec.Pool.domain_stats) ->
              ( Printf.sprintf "worker%d_busy_s" s.Exec.Pool.worker,
                s.Exec.Pool.busy_s ))
            util)
       "PERF.sweep_parallel");
  (* The speedup only means anything relative to the hardware that
     produced it: a 0.85x row from a 1-core host reads as a regression
     until you see cores = 1.  Record the shape of the run next to the
     number (attached to a timing row, so informational, never
     gated). *)
  add_entry
    (Obs.Export.entry ~ns_per_run:speedup
       ~breakdown:
         [ ("jobs", float_of_int jobs); ("cores", float_of_int cores) ]
       "PERF.par_sweep_speedup")

(* ------------------------------------------------------------------ *)
(* PERF-BMC: compile-once batched verification vs rebuild-per-program  *)
(* ------------------------------------------------------------------ *)

(* The batched paths (Bmc.exhaustive ~load, Sweep ~batched) compile
   the machine shape once and drive every program by rebinding initial
   register values over per-domain sessions.  This section is both the
   benchmark (ns/program, programs/s, the PERF.bmc entries) and the
   @check guard that the fast path can never silently diverge: batched
   outcomes must equal the rebuild path's bit for bit, serially and
   under the pool, or the run fails. *)
let perf_bmc ~jobs () =
  section "PERF-BMC"
    (Printf.sprintf
       "Batched (compile-once) vs rebuild-per-program verification (-j %d)"
       jobs);
  (* One machine family per row: equality-check the three paths, then
     export the outcome (semantic — regressed by compare_baseline) and
     the per-program timings (informational). *)
  let pair name ~build ~load ~alphabet ~length =
    let bmc ?pool ~batched () =
      Proof_engine.Bmc.exhaustive ?pool
        ?load:(if batched then Some load else None)
        ~build ~alphabet ~length ()
    in
    let rebuild = bmc ~batched:false () in
    let batched = bmc ~batched:true () in
    let batched_par =
      Exec.Pool.with_pool ~size:jobs @@ fun pool -> bmc ~pool ~batched:true ()
    in
    if batched <> rebuild || batched_par <> rebuild then begin
      Format.printf "BATCHED BMC DIVERGES from the rebuild path on %s (-j %d)!@."
        name jobs;
      exit 1
    end;
    let programs = rebuild.Proof_engine.Bmc.programs in
    let failures = List.length rebuild.Proof_engine.Bmc.failures in
    add_entry
      (Obs.Export.entry
         ~breakdown:
           [
             ("programs", float_of_int programs);
             ("failures", float_of_int failures);
           ]
         (Printf.sprintf "PERF.bmc_%s_outcome" name));
    let per ~batched =
      time_ns_per_run (fun () -> bmc ~batched ()) /. float_of_int programs
    in
    let np_r = per ~batched:false in
    let np_b = per ~batched:true in
    let speedup = np_r /. np_b in
    Format.printf
      "  %-6s %4d programs: rebuild %8.0f ns/prog (%8.0f/s), batched %8.0f \
       ns/prog (%8.0f/s): %5.2fx, outcomes bit-identical at -j %d@."
      name programs np_r (1e9 /. np_r) np_b (1e9 /. np_b) speedup jobs;
    add_entry
      (Obs.Export.entry ~ns_per_run:np_r
         (Printf.sprintf "PERF.bmc_%s_rebuild" name));
    add_entry
      (Obs.Export.entry ~ns_per_run:np_b
         (Printf.sprintf "PERF.bmc_%s_batched" name));
    add_entry
      (Obs.Export.entry ~ns_per_run:speedup
         (Printf.sprintf "PERF.bmc_%s_speedup" name))
  in
  (* The 3-stage toy: run cost is a large share of the rebuild cost,
     so this is the conservative end of the win. *)
  pair "toy"
    ~build:(fun program -> Core.Toy.transform ~program ())
    ~load:(fun program -> Core.Toy.image ~program)
    ~alphabet:
      [
        Core.Toy.encode ~dst:1 ~src1:1 ~src2:1;
        Core.Toy.encode ~dst:2 ~src1:1 ~src2:1;
        Core.Toy.encode ~dst:1 ~src1:2 ~src2:2;
        Core.Toy.encode ~dst:3 ~src1:1 ~src2:3;
      ]
    ~length:3;
  (* A deep generated machine (6 stages, late unit, accumulator):
     transform + plan compilation dominates the rebuild path — the
     shape the compile-once design targets. *)
  let p =
    {
      Proof_engine.Machine_gen.n_stages = 6;
      data_width = 16;
      addr_bits = 3;
      late_stage = Some 3;
      has_accumulator = true;
      seed = 5;
    }
  in
  let enc = Proof_engine.Machine_gen.encode p in
  pair "gen6"
    ~build:(fun program ->
      Pipeline.Transform.run
        ~hints:(Proof_engine.Machine_gen.hints p)
        (Proof_engine.Machine_gen.machine p ~program))
    ~load:(fun program -> Proof_engine.Machine_gen.image p ~program)
    ~alphabet:
      [
        enc ~late:false ~dst:1 ~src1:1 ~src2:2;
        enc ~late:false ~dst:2 ~src1:1 ~src2:1;
        enc ~late:true ~dst:1 ~src1:2 ~src2:1;
        enc ~late:true ~dst:2 ~src1:1 ~src2:2;
      ]
    ~length:3;
  (* The benchmark machine itself, the 5-stage DLX: its ~ms
     transform + plan compilation is the cost the batched path
     amortizes, so this row carries the headline speedup. *)
  pair "dlx"
    ~build:(fun program -> Dlx.Seq_dlx.transform Dlx.Seq_dlx.Base ~program)
    ~load:(fun program -> Dlx.Seq_dlx.image ~program ())
    ~alphabet:
      Dlx.Isa.
        [
          encode (Add (1, 1, 2));
          encode (Addi (2, 1, 1));
          encode (Sub (1, 2, 1));
          encode (Xor (3, 1, 2));
        ]
    ~length:3;
  (* Same guard and measurement for the workload sweeps. *)
  let biases = [ 0.0; 0.5; 1.0 ] in
  let sweep ~batched () =
    Workload.Sweep.dependency_sweep ~batched ~biases ~length:200 ~seed:7 ()
  in
  let rows_rebuild = sweep ~batched:false () in
  let rows_batched = sweep ~batched:true () in
  if rows_rebuild <> rows_batched then begin
    Format.printf "BATCHED SWEEP ROWS DIVERGE from the rebuild path!@.";
    exit 1
  end;
  let ns_sr = time_ns_per_run (fun () -> sweep ~batched:false ()) in
  let ns_sb = time_ns_per_run (fun () -> sweep ~batched:true ()) in
  Format.printf
    "  sweep (%d points): rebuild %.2f ms, batched %.2f ms: speedup %.2fx, \
     rows bit-identical@."
    (List.length biases) (ns_sr /. 1e6) (ns_sb /. 1e6) (ns_sr /. ns_sb);
  add_entry
    (Obs.Export.entry ~ns_per_run:(ns_sr /. ns_sb)
       "PERF.sweep_batched_vs_rebuild")

(* ------------------------------------------------------------------ *)
(* PERF-BMC-LANES: bit-parallel lane verification vs scalar batched    *)
(* ------------------------------------------------------------------ *)

(* The lane engine (Bmc.exhaustive ~lanes) packs up to 62 programs
   into one machine word per boolean plan slot and drives them through
   a single bit-parallel run of the control fabric.  This section is
   both the benchmark (the PERF.bmc_lanes entries, per-program ns
   against the scalar batched rows above) and the @check guard that
   the lane path can never silently diverge: outcomes AND the WORK
   counter deltas must equal the scalar batched path's bit for bit,
   serially and under the pool, or the run fails. *)
let perf_bmc_lanes ~jobs () =
  section "PERF-BMC-LANES"
    (Printf.sprintf
       "Bit-parallel 62-lane verification vs scalar batched (-j %d)" jobs);
  let pair name ~build ~load ~alphabet ~length =
    let bmc ?pool ?(lanes = false) () =
      Proof_engine.Bmc.exhaustive ?pool ~lanes ~load ~build ~alphabet ~length
        ()
    in
    (* The WORK deltas of the two paths, not just the verdicts: a lane
       run that silently fell back (or skipped accounting) would still
       agree on outcomes. *)
    let counted f =
      let before = Obs.Counters.work_snapshot () in
      let r = f () in
      ( r,
        List.map2
          (fun (n, b) (_, a) -> (n, a - b))
          before
          (Obs.Counters.work_snapshot ()) )
    in
    let scalar, w_scalar = counted (fun () -> bmc ()) in
    let lanes, w_lanes = counted (fun () -> bmc ~lanes:true ()) in
    let lanes_par, w_par =
      counted (fun () ->
          Exec.Pool.with_pool ~size:jobs @@ fun pool ->
          bmc ~pool ~lanes:true ())
    in
    if lanes <> scalar || lanes_par <> scalar then begin
      Format.printf
        "LANE BMC DIVERGES from the scalar batched path on %s (-j %d)!@." name
        jobs;
      exit 1
    end;
    if w_lanes <> w_scalar || w_par <> w_scalar then begin
      Format.printf
        "LANE BMC WORK COUNTERS DIVERGE from the scalar batched path on %s \
         (-j %d)!@."
        name jobs;
      exit 1
    end;
    let programs = scalar.Proof_engine.Bmc.programs in
    let per f = time_ns_per_run f /. float_of_int programs in
    let np_s = per (fun () -> bmc ()) in
    let np_l = per (fun () -> bmc ~lanes:true ()) in
    let speedup = np_s /. np_l in
    Format.printf
      "  %-6s %4d programs: batched %8.0f ns/prog (%8.0f/s), lanes %8.0f \
       ns/prog (%8.0f/s): %5.2fx, outcomes and WORK bit-identical at -j %d@."
      name programs np_s (1e9 /. np_s) np_l (1e9 /. np_l) speedup jobs;
    add_entry
      (Obs.Export.entry ~ns_per_run:np_l
         (Printf.sprintf "PERF.bmc_lanes_%s_ns_per_run" name));
    add_entry
      (Obs.Export.entry ~ns_per_run:speedup
         (Printf.sprintf "PERF.bmc_lanes_%s_speedup" name))
  in
  (* The same three machine rows as PERF-BMC, so the lane speedups read
     directly against the batched rows above. *)
  pair "toy"
    ~build:(fun program -> Core.Toy.transform ~program ())
    ~load:(fun program -> Core.Toy.image ~program)
    ~alphabet:
      [
        Core.Toy.encode ~dst:1 ~src1:1 ~src2:1;
        Core.Toy.encode ~dst:2 ~src1:1 ~src2:1;
        Core.Toy.encode ~dst:1 ~src1:2 ~src2:2;
        Core.Toy.encode ~dst:3 ~src1:1 ~src2:3;
      ]
    ~length:3;
  let p =
    {
      Proof_engine.Machine_gen.n_stages = 6;
      data_width = 16;
      addr_bits = 3;
      late_stage = Some 3;
      has_accumulator = true;
      seed = 5;
    }
  in
  let enc = Proof_engine.Machine_gen.encode p in
  pair "gen6"
    ~build:(fun program ->
      Pipeline.Transform.run
        ~hints:(Proof_engine.Machine_gen.hints p)
        (Proof_engine.Machine_gen.machine p ~program))
    ~load:(fun program -> Proof_engine.Machine_gen.image p ~program)
    ~alphabet:
      [
        enc ~late:false ~dst:1 ~src1:1 ~src2:2;
        enc ~late:false ~dst:2 ~src1:1 ~src2:1;
        enc ~late:true ~dst:1 ~src1:2 ~src2:1;
        enc ~late:true ~dst:2 ~src1:1 ~src2:2;
      ]
    ~length:3;
  pair "dlx"
    ~build:(fun program -> Dlx.Seq_dlx.transform Dlx.Seq_dlx.Base ~program)
    ~load:(fun program -> Dlx.Seq_dlx.image ~program ())
    ~alphabet:
      Dlx.Isa.
        [
          encode (Add (1, 1, 2));
          encode (Addi (2, 1, 1));
          encode (Sub (1, 2, 1));
          encode (Xor (3, 1, 2));
        ]
    ~length:3;
  (* The lane sweeps ride the same guard: rows and WORK must match the
     scalar batched sweep. *)
  let biases = [ 0.0; 0.5; 1.0 ] in
  let sweep ?(lanes = false) () =
    Workload.Sweep.dependency_sweep ~lanes ~biases ~length:200 ~seed:7 ()
  in
  let before = Obs.Counters.work_snapshot () in
  let rows_scalar = sweep () in
  let mid = Obs.Counters.work_snapshot () in
  let rows_lanes = sweep ~lanes:true () in
  let after = Obs.Counters.work_snapshot () in
  let delta a b = List.map2 (fun (n, x) (_, y) -> (n, y - x)) a b in
  if rows_scalar <> rows_lanes || delta before mid <> delta mid after then begin
    Format.printf "LANE SWEEP DIVERGES from the scalar batched sweep!@.";
    exit 1
  end;
  let ns_s = time_ns_per_run (fun () -> sweep ()) in
  let ns_l = time_ns_per_run (fun () -> sweep ~lanes:true ()) in
  Format.printf
    "  sweep (%d points): batched %.2f ms, lanes %.2f ms: speedup %.2fx, \
     rows and WORK bit-identical@."
    (List.length biases) (ns_s /. 1e6) (ns_l /. 1e6) (ns_s /. ns_l);
  add_entry
    (Obs.Export.entry ~ns_per_run:(ns_s /. ns_l) "PERF.sweep_lanes_speedup")

(* ------------------------------------------------------------------ *)
(* PERF-OPT: the plan optimizer vs the raw tape                        *)
(* ------------------------------------------------------------------ *)

(* The optimizer (Hw.Plan.optimize: fold/kill/compact + LUT synthesis,
   then Pipesem's commit-group segmentation) is a pure compile-time
   transformation.  This section measures its two claims separately,
   on the same dlx BMC workload as PERF-BMC/PERF-BMC-LANES:

   - Correctness (the @check guard): the full sweep with the optimizer
     on and off, serially and under the pool, over precompiled shapes.
     Outcomes and every WORK counter except [plan_ops] (whose shrink
     is the optimizer's entire point) must match bit for bit.

   - Speed (the gated rows): the hot-path tape execution each BMC row
     runs on — the scalar engine evaluating the LUT tape, the lanes
     engine evaluating its fold-only sibling (Pipesem.lanes_plan) —
     against the raw tape of the same shape.  The win is the scalar
     engine's: LUT synthesis collapses its per-step dispatch, while
     the lanes sibling is fold-only and roughly neutral by design
     (per-lane table walks lose to packed word ops and tight per-lane
     loops — measured; see DESIGN.md).  End-to-end sweep timings are
     exported as informational [_check_] rows: a check also runs the
     sequential reference and the comparison, so its ratio is
     structurally closer to 1 than the tape ratio.

   The [optimize]/[shape] arguments are explicit, so these rows are
   identical whether or not the process runs under [--no-opt]. *)
let perf_opt ~jobs () =
  section "PERF-OPT"
    (Printf.sprintf
       "Plan optimizer (fold + LUT + segmentation) vs raw tape (-j %d)" jobs);
  let build program = Dlx.Seq_dlx.transform Dlx.Seq_dlx.Base ~program in
  let load program = Dlx.Seq_dlx.image ~program () in
  let alphabet =
    Dlx.Isa.
      [
        encode (Add (1, 1, 2));
        encode (Addi (2, 1, 1));
        encode (Sub (1, 2, 1));
        encode (Xor (3, 1, 2));
      ]
  in
  (* One shape per optimizer setting, compiled once: the timed legs
     measure the sweep, not the compile (the PERF.opt_compile_* rows
     below report the compile cost separately). *)
  let t0 = build (List.init 3 (fun _ -> List.hd alphabet)) in
  let sh_opt = Proof_engine.Consistency.shape ~optimize:true t0 in
  let sh_raw = Proof_engine.Consistency.shape ~optimize:false t0 in
  let bmc ?pool ?(lanes = false) shape =
    Proof_engine.Bmc.exhaustive ?pool ~lanes ~shape ~load ~build ~alphabet
      ~length:3 ()
  in
  let counted f =
    let before = Obs.Counters.work_snapshot () in
    let r = f () in
    ( r,
      List.map2
        (fun (n, b) (_, a) -> (n, a - b))
        before
        (Obs.Counters.work_snapshot ()) )
  in
  let sans_plan_ops = List.filter (fun (n, _) -> n <> "plan_ops") in
  (* Interleaved min-of-epochs: each epoch times both sides back to
     back so a load spike hits them together, and each side reports
     its best epoch — the stablest ratio this host will give. *)
  let ratio ~runs f_opt f_raw =
    Obs.Counters.with_disabled @@ fun () ->
    f_opt ();
    f_raw ();
    let best_o = ref infinity and best_r = ref infinity in
    for _ = 1 to 10 do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to runs do
        f_opt ()
      done;
      let t1 = Unix.gettimeofday () in
      for _ = 1 to runs do
        f_raw ()
      done;
      let t2 = Unix.gettimeofday () in
      best_o := min !best_o ((t1 -. t0) /. float_of_int runs *. 1e9);
      best_r := min !best_r ((t2 -. t1) /. float_of_int runs *. 1e9)
    done;
    (!best_o, !best_r)
  in
  (* ------- correctness guard + informational end-to-end rows ------ *)
  let check_row name ~lanes =
    let opt, w_opt = counted (fun () -> bmc ~lanes sh_opt) in
    let raw, w_raw = counted (fun () -> bmc ~lanes sh_raw) in
    let opt_par, w_par =
      counted (fun () ->
          Exec.Pool.with_pool ~size:jobs @@ fun pool ->
          bmc ~pool ~lanes sh_opt)
    in
    if opt <> raw || opt_par <> raw then begin
      Format.printf
        "OPTIMIZED BMC DIVERGES from the unoptimized tape on %s (-j %d)!@."
        name jobs;
      exit 1
    end;
    if
      sans_plan_ops w_opt <> sans_plan_ops w_raw
      || sans_plan_ops w_par <> sans_plan_ops w_raw
    then begin
      Format.printf
        "OPTIMIZED BMC WORK COUNTERS (beyond plan_ops) DIVERGE on %s (-j \
         %d)!@."
        name jobs;
      exit 1
    end;
    let po_opt = List.assoc "plan_ops" w_opt in
    let po_raw = List.assoc "plan_ops" w_raw in
    let programs = opt.Proof_engine.Bmc.programs in
    let per shape =
      time_ns_per_run (fun () -> bmc ~lanes shape) /. float_of_int programs
    in
    let np_o = per sh_opt in
    let np_r = per sh_raw in
    Format.printf
      "  %-14s %4d programs: full check %8.0f -> %8.0f ns/prog (%.2fx, \
       informational); plan_ops %d -> %d (-%.1f%%), outcomes and other \
       WORK bit-identical at -j 1 and -j %d@."
      name programs np_r np_o (np_r /. np_o) po_raw po_opt
      (100. *. float_of_int (po_raw - po_opt) /. float_of_int (max 1 po_raw))
      jobs;
    add_entry
      (Obs.Export.entry ~ns_per_run:np_o
         (Printf.sprintf "PERF.opt_%s_check_ns_per_run" name));
    add_entry
      (Obs.Export.entry ~ns_per_run:(np_r /. np_o)
         (Printf.sprintf "PERF.opt_%s_check_speedup" name));
    add_entry
      (Obs.Export.entry
         ~breakdown:
           [
             ("plan_ops_raw", float_of_int po_raw);
             ("plan_ops_optimized", float_of_int po_opt);
           ]
         (Printf.sprintf "PERF.opt_%s_work" name))
  in
  check_row "bmc_dlx" ~lanes:false;
  check_row "bmc_lanes_dlx" ~lanes:true;
  (* --------- the gated hot-path tape-execution rows --------------- *)
  let c_opt = Proof_engine.Consistency.shape_compiled sh_opt in
  let c_raw = Proof_engine.Consistency.shape_compiled sh_raw in
  let p_opt = Pipeline.Pipesem.plan c_opt in
  let lp_opt = Pipeline.Pipesem.lanes_plan c_opt in
  let p_raw = Pipeline.Pipesem.plan c_raw in
  (* Drive full tape evaluations with LCG-scrambled inputs and a
     constant-stride file binding: the tape's cost is structural
     (every step runs), so arbitrary input values time exactly what
     the BMC inner loops pay per evaluation. *)
  let scalar_runner p =
    let inst = Hw.Plan.instance p in
    Hw.Plan.iter_files p (fun name ~index:_ ~width ->
        Hw.Plan.bind_file inst name (fun a ->
            Hw.Bitvec.make ~width (Hw.Bitvec.to_int a * 7)));
    let inputs = ref [] in
    Hw.Plan.iter_inputs p (fun _ ~slot ~width ->
        inputs := (slot, width) :: !inputs);
    let inputs = !inputs in
    let seed = ref 1 in
    fun () ->
      List.iter
        (fun (slot, width) ->
          seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
          Hw.Plan.set inst slot (Hw.Bitvec.make ~width !seed))
        inputs;
      Hw.Plan.run inst
  in
  let lanes_runner p =
    let cap = Hw.Lanes.max_lanes in
    let l = Hw.Plan.lanes ~capacity:cap p in
    Hw.Plan.lanes_set_active l cap;
    Hw.Plan.iter_files p (fun name ~index:_ ~width ->
        ignore width;
        Hw.Plan.lanes_bind_file l name
          (Array.init cap (fun i -> Array.make 4096 i)));
    let inputs = ref [] in
    Hw.Plan.iter_inputs p (fun _ ~slot ~width ->
        inputs := (slot, width) :: !inputs);
    let inputs = !inputs in
    let seed = ref 1 in
    fun () ->
      List.iter
        (fun (slot, width) ->
          seed := ((!seed * 1103515245) + 12345) land 0x3FFFFFFF;
          if Hw.Plan.lanes_is_bool l slot then
            Hw.Plan.lanes_set_word l slot !seed
          else begin
            let a = Hw.Plan.lanes_ints l slot in
            let m = (1 lsl width) - 1 in
            for i = 0 to cap - 1 do
              a.(i) <- (!seed + (i * 2654435761)) land m
            done
          end)
        inputs;
      Hw.Plan.run_lanes l
  in
  let measure () =
    let so, sr = ratio ~runs:300 (scalar_runner p_opt) (scalar_runner p_raw) in
    let lo, lr = ratio ~runs:60 (lanes_runner lp_opt) (lanes_runner p_raw) in
    (so, sr /. so, lo, lr /. lo, sqrt (sr /. so *. (lr /. lo)))
  in
  let geomean_of (_, _, _, _, g) = g in
  (* A loaded host can wedge one side of a whole measurement (observed:
     a process-lifetime cache anomaly on the lane arrays), so a result
     below the floor is re-measured before it can fail the gate; every
     attempt is printed. *)
  let best = ref (measure ()) in
  let attempts = ref 1 in
  while geomean_of !best < 1.2 && !attempts < 3 do
    Format.printf "  geomean %.2fx below floor; re-measuring (attempt %d)@."
      (geomean_of !best) (!attempts + 1);
    incr attempts;
    let m = measure () in
    if geomean_of m > geomean_of !best then best := m
  done;
  let s_ns, s_speed, l_ns, l_speed, geo = !best in
  Format.printf
    "  hot tape, scalar engine: %8.0f ns/eval LUT tape (%d instrs) vs \
     %8.0f raw (%d): %.2fx@."
    s_ns (Hw.Plan.n_instrs p_opt)
    (s_ns *. s_speed) (Hw.Plan.n_instrs p_raw) s_speed;
  Format.printf
    "  hot tape, lanes engine:  %8.0f ns/62-lane eval fold-only sibling \
     (%d instrs) vs %8.0f raw: %.2fx (neutral by design)@."
    l_ns (Hw.Plan.n_instrs lp_opt) (l_ns *. l_speed) l_speed;
  add_entry
    (Obs.Export.entry ~ns_per_run:s_ns "PERF.opt_bmc_dlx_ns_per_run");
  add_entry
    (Obs.Export.entry ~ns_per_run:s_speed "PERF.opt_bmc_dlx_speedup");
  add_entry
    (Obs.Export.entry ~ns_per_run:l_ns "PERF.opt_bmc_lanes_dlx_ns_per_run");
  add_entry
    (Obs.Export.entry ~ns_per_run:l_speed "PERF.opt_bmc_lanes_dlx_speedup");
  Format.printf "  geomean hot-tape speedup: %.2fx (floor 1.20)@." geo;
  add_entry (Obs.Export.entry ~ns_per_run:geo "PERF.opt_geomean_speedup");
  (* The tape itself, as deterministic semantic fields: what the
     optimizer removed and what it synthesized on the hot path. *)
  let tr = dlx_transform (Dlx.Progs.fib 5) in
  let cc = Pipeline.Pipesem.compile ~optimize:true ~observe:false tr in
  let raw_plan =
    Pipeline.Pipesem.plan (Pipeline.Pipesem.compile ~optimize:false tr)
  in
  let hot_plan = Pipeline.Pipesem.plan cc in
  let stat p k = Option.value ~default:0 (List.assoc_opt k (Hw.Plan.stats p)) in
  add_entry
    (Obs.Export.entry
       ~breakdown:
         [
           ("raw_instrs", float_of_int (Hw.Plan.n_instrs raw_plan));
           ("hot_instrs", float_of_int (Hw.Plan.n_instrs hot_plan));
           ("hot_ctrl_instrs", float_of_int (Hw.Plan.n_ctrl_instrs hot_plan));
           ("hot_groups", float_of_int (Hw.Plan.n_groups hot_plan));
           ("hot_luts", float_of_int (stat hot_plan "lut" + stat hot_plan "lut2"));
           ("hot_tables", float_of_int (stat hot_plan "tables"));
           ( "hot_lanes_instrs",
             float_of_int (Hw.Plan.n_instrs (Pipeline.Pipesem.lanes_plan cc)) );
         ]
       "PERF.opt_tape");
  Format.printf
    "  dlx5 tape: %d raw instrs -> %d hot-path instrs (%d control + %d \
     groups, %d lut steps); lanes sibling %d instrs@."
    (Hw.Plan.n_instrs raw_plan) (Hw.Plan.n_instrs hot_plan)
    (Hw.Plan.n_ctrl_instrs hot_plan) (Hw.Plan.n_groups hot_plan)
    (stat hot_plan "lut" + stat hot_plan "lut2")
    (Hw.Plan.n_instrs (Pipeline.Pipesem.lanes_plan cc));
  (* Compile-time cost of the optimizer, informational: what one
     compile pays for the per-run savings above. *)
  let ns_raw =
    time_wall_ns (fun () -> Pipeline.Pipesem.compile ~optimize:false tr)
  in
  let ns_opt =
    time_wall_ns (fun () -> Pipeline.Pipesem.compile ~optimize:true tr)
  in
  Format.printf
    "  compile dlx5: %.2f ms raw, %.2f ms with optimizer (informational)@."
    (ns_raw /. 1e6) (ns_opt /. 1e6);
  add_entry (Obs.Export.entry ~ns_per_run:ns_raw "PERF.opt_compile_raw");
  add_entry
    (Obs.Export.entry ~ns_per_run:ns_opt "PERF.opt_compile_optimized");
  (* Speedup floor: the optimizer must keep paying for itself on the
     tapes the hot paths run, at the criterion's 1.2x geomean. *)
  if geo < 1.2 then begin
    Format.printf
      "OPTIMIZER SPEEDUP REGRESSED: geomean %.2fx < 1.20x floor@." geo;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* CAMPAIGN: fault-injection detection coverage (smoke campaign)       *)
(* ------------------------------------------------------------------ *)

(* A deterministic fault-injection campaign on the 3-stage toy
   machine: ~20 mutants sampled with a fixed seed, plus the
   deliberately wedged engine, which must be timed out and classified
   without aborting the run.  The classification counts become a
   breakdown in the export and regress like CPI: any drift in
   detection coverage fails @check, and the counts must be
   bit-identical at every pool size. *)
let campaign_smoke ~jobs () =
  section "CAMPAIGN"
    (Printf.sprintf
       "Fault-injection detection coverage - %s smoke campaign (-j %d)"
       (Service.Machine_spec.to_string Service.Machine_spec.Toy3)
       jobs);
  let tr = Core.Toy.transform ~program:Core.Toy.default_program () in
  let seed = 42 in
  let mutants =
    Fault.Mutate.sample ~seed ~count:19
      (Fault.Mutate.enumerate ~transients:6 ~seed tr)
    @ [ Fault.Mutate.apply (Fault.Mutate.Hang { at_cycle = 5 }) tr ]
  in
  let target =
    Fault.Campaign.make_target
      ~instructions:(List.length Core.Toy.default_program) tr
  in
  (* The wedged-engine mutant spins until the wall-clock timeout trips,
     so the cycles it burns vary with host speed: counters off, or the
     WORK totals would be nondeterministic. *)
  let outcomes, summary =
    Obs.Counters.with_disabled @@ fun () ->
    Exec.Pool.with_pool ~size:jobs @@ fun pool ->
    Fault.Campaign.run ~pool ~timeout_s:2.0 target mutants
  in
  List.iter (fun o -> Format.printf "  %a@." Fault.Campaign.pp_outcome o)
    outcomes;
  Format.printf "  %a@." Fault.Campaign.pp_summary summary;
  add_entry
    (Obs.Export.entry
       ~breakdown:(Fault.Campaign.breakdown summary)
       "CAMPAIGN.toy3_smoke");
  if not (Fault.Campaign.ok summary) then begin
    Format.printf "CAMPAIGN FAILED: missed or aborted mutants@.";
    exit 1
  end;
  if summary.Fault.Campaign.timed_out <> 1 then begin
    Format.printf
      "CAMPAIGN FAILED: the wedged-engine mutant was not timed out@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* COUNTERS: the deterministic work scores of this run                 *)
(* ------------------------------------------------------------------ *)

(* Everything above ran with counting on (except the repetition-timing
   loops, the campaign and bechamel, whose iteration counts are
   wall-clock dependent): the WORK totals are a deterministic score of
   the run — bit-identical at -j 1 and -j max, batched or rebuild —
   and regress exactly, both against the committed baseline and
   against the per-commit history.  The SCHED totals describe how the
   work was placed (pool tasks, session binds, queue depth) and are
   informational. *)
let counters_section () =
  section "COUNTERS"
    "Deterministic work counters (WORK.*: gated exactly; SCHED.*: \
     informational)";
  let work = Obs.Counters.work_snapshot () in
  let sched = Obs.Counters.sched_snapshot () in
  let table title rows =
    Format.printf "  %-20s %14s@." title "count";
    List.iter (fun (n, v) -> Format.printf "  %-20s %14d@." n v) rows
  in
  table "work counter" work;
  Format.printf "@.";
  table "sched counter" sched;
  let breakdown rows = List.map (fun (n, v) -> (n, float_of_int v)) rows in
  add_entry (Obs.Export.entry ~breakdown:(breakdown work) "WORK.counters");
  add_entry (Obs.Export.entry ~breakdown:(breakdown sched) "SCHED.counters")

(* ------------------------------------------------------------------ *)
(* SERVE: directed robustness phases with exact counter outcomes       *)
(* ------------------------------------------------------------------ *)

(* Each phase drives one serve failure path to a count that is exact
   by construction — shed by queue arithmetic, retries by a crash
   budget, restarts by a kill budget, replay by journal shape — on
   its own fixed-size pools, so the deltas are identical at -j 1 and
   -j max and regress exactly like WORK.* scores.  Runs after
   [counters_section] so the WORK/SCHED snapshots above are
   untouched by the work done here. *)
let serve_robustness () =
  section "SERVE"
    "Robustness counters (shed / retry / restart / replay: gated exactly)";
  let module Req = Service.Request in
  let module Srv = Service.Serve in
  let delta id f =
    let before = Obs.Counters.get id in
    f ();
    Obs.Counters.get id - before
  in
  let line ?id kind machine kernel =
    Req.to_string
      (Req.make ?id
         ~spec:{ Req.default_spec with Req.machine; Req.kernel = kernel }
         kind)
  in
  let stats_lines =
    [
      line Req.Stats Service.Machine_spec.Dlx5 (Some "fib_10");
      line Req.Stats Service.Machine_spec.Dlx6 (Some "fib_10");
      line Req.Stats Service.Machine_spec.Dlx5 (Some "memcpy_8");
      line Req.Stats Service.Machine_spec.Dlx6 (Some "memcpy_8");
    ]
  in
  (* Shed: 10 distinct leaders against max_queue 4 -> exactly 6 shed
     (the four kept ones are cheap stats; the shed ones never run). *)
  let shed =
    delta Obs.Counters.Serve_shed (fun () ->
        let env = Service.Handler.create_env () in
        let admission = Srv.make_admission ~max_queue:4 ~retries:0 () in
        Exec.Pool.with_pool ~size:2 (fun pool ->
            let extra =
              [
                line Req.Stats Service.Machine_spec.Dlx5
                  (Some "dep_chain_24");
                line Req.Stats Service.Machine_spec.Dlx6
                  (Some "dep_chain_24");
                line Req.Verify Service.Machine_spec.Dlx5 (Some "fib_10");
                line Req.Verify Service.Machine_spec.Dlx6 (Some "fib_10");
                line Req.Verify Service.Machine_spec.Dlx5
                  (Some "memcpy_8");
                line Req.Verify Service.Machine_spec.Dlx6
                  (Some "memcpy_8");
              ]
            in
            ignore
              (Srv.process_batch ~env ~pool ~admission (stats_lines @ extra)
                : Service.Response.t list)))
  in
  (* Retry: crash probability 1 with budget 2 -> round one fails
     exactly two leaders, the retry round succeeds -> 2 retries. *)
  let retries =
    delta Obs.Counters.Serve_retries (fun () ->
        let env = Service.Handler.create_env () in
        let admission = Srv.make_admission ~max_queue:64 ~retries:2 () in
        let chaos =
          Exec.Chaos.create
            { Exec.Chaos.default_config with
              Exec.Chaos.seed = 5; crash = 1.0; crash_budget = Some 2 }
        in
        Exec.Pool.with_pool ~size:2 ~chaos (fun pool ->
            ignore
              (Srv.process_batch ~env ~pool ~admission stats_lines
                : Service.Response.t list)))
  in
  (* Restart: kill budget 1 -> the watchdog heals exactly one worker. *)
  let restarts =
    delta Obs.Counters.Pool_restarts (fun () ->
        let chaos =
          Exec.Chaos.create
            { Exec.Chaos.default_config with
              Exec.Chaos.seed = 7; kill = 1.0; kill_budget = Some 1 }
        in
        Exec.Pool.with_pool ~size:3 ~chaos (fun pool ->
            (* The tasks sleep briefly so the workers — not just the
               helping submitter — claim some, meeting the kill draw. *)
            let rec settle n =
              if n > 0 && Exec.Pool.heal pool = 0 then begin
                ignore
                  (Exec.Pool.map pool
                     (fun x ->
                       Unix.sleepf 0.001;
                       x + 1)
                     [ 1; 2; 3; 4; 5; 6; 7; 8 ]
                    : int list);
                settle (n - 1)
              end
            in
            settle 50))
  in
  (* Replay: a journal holding one completed and two pending entries
     -> exactly three responses re-emitted on restart. *)
  let replayed =
    delta Obs.Counters.Serve_journal_replayed (fun () ->
        let path = Filename.temp_file "bench_serve_journal" ".jsonl" in
        let done_line = line ~id:"r0" Req.Stats Service.Machine_spec.Toy3 None in
        let pending =
          [
            line ~id:"r1" Req.Stats Service.Machine_spec.Dlx5 (Some "fib_10");
            line ~id:"r2" Req.Stats Service.Machine_spec.Dlx6 (Some "fib_10");
          ]
        in
        let response =
          match Req.of_string done_line with
          | Ok req -> Service.Response.to_string (Service.Handler.handle req)
          | Error _ -> assert false
        in
        let j = Service.Journal.open_ path in
        (match Service.Journal.append_admits j (done_line :: pending) with
        | seq0 :: _ -> Service.Journal.append_done j [ (seq0, response) ]
        | [] -> assert false);
        Service.Journal.close j;
        let j = Service.Journal.open_ path in
        let env = Service.Handler.create_env () in
        let cfg = { Srv.default_config with Srv.journal = Some path; jobs = 2 } in
        let latency =
          Obs.Metrics.histogram (Obs.Metrics.create ()) "bench.latency_ms"
        in
        Exec.Pool.with_pool ~size:2 (fun pool ->
            Srv.replay ~env ~pool ~cfg ~shutdown:(Exec.Cancel.create ())
              ~latency
              ~admission:(Srv.make_admission ())
              j
              (fun _ -> ()));
        Service.Journal.close j;
        Sys.remove path)
  in
  Format.printf "  %-20s %14s@." "phase" "count";
  List.iter
    (fun (n, v) -> Format.printf "  %-20s %14d@." n v)
    [
      ("serve_shed", shed); ("serve_retries", retries);
      ("pool_restarts", restarts); ("journal_replayed", replayed);
    ];
  add_entry
    (Obs.Export.entry
       ~breakdown:
         [
           ("serve_shed", float_of_int shed);
           ("serve_retries", float_of_int retries);
           ("pool_restarts", float_of_int restarts);
           ("journal_replayed", float_of_int replayed);
         ]
       "SERVE.counters")

(* ------------------------------------------------------------------ *)
(* Baseline regression guard (@check): compare the semantic fields of
   this run's export against the committed BENCH_pipeline.json.  CPI,
   instruction and cycle counts are deterministic — any drift means
   the simulators changed behaviour.  Breakdowns of non-timing entries
   (hazard-attribution terms, campaign detection coverage) are
   semantic too and diffed the same way; wall-clock (ns_per_run)
   fields — and the per-worker breakdowns attached to them — are
   reported but never fail the build.                                  *)
(* ------------------------------------------------------------------ *)

let compare_baseline ?(ignore_keys = []) ~path () =
  let entries = List.rev !export_entries in
  match Obs.Export.read_file ~path with
  | Error msg ->
    Format.printf "baseline %s unreadable: %s@." path msg;
    exit 1
  | Ok baseline ->
    let drift = ref [] in
    let compared = ref 0 in
    List.iter
      (fun (b : Obs.Export.entry) ->
        match
          List.find_opt
            (fun (e : Obs.Export.entry) ->
              e.Obs.Export.experiment = b.Obs.Export.experiment)
            entries
        with
        | None -> ()  (* baseline entry from another mode (e.g. full) *)
        | Some e ->
          incr compared;
          let check field pp old_v new_v =
            if old_v <> new_v then
              drift :=
                Format.asprintf "%s: %s %a -> %a" b.Obs.Export.experiment
                  field pp old_v pp new_v
                :: !drift
          in
          let pp_fo ppf = Format.fprintf ppf "%a" (Format.pp_print_option Format.pp_print_float) in
          let pp_io ppf = Format.fprintf ppf "%a" (Format.pp_print_option Format.pp_print_int) in
          check "cpi" pp_fo b.Obs.Export.cpi e.Obs.Export.cpi;
          check "instructions" pp_io b.Obs.Export.instructions
            e.Obs.Export.instructions;
          check "cycles" pp_io b.Obs.Export.cycles e.Obs.Export.cycles;
          (* Breakdowns on timing entries hold per-worker wall clock,
             and SCHED.* breakdowns hold pool-placement counts that
             legitimately vary with -j; everywhere else they are
             semantic (hazard terms, campaign classification counts,
             WORK.* scores) and must match key for key. *)
          let sched_entry =
            String.length b.Obs.Export.experiment >= 6
            && String.sub b.Obs.Export.experiment 0 6 = "SCHED."
          in
          (if
             b.Obs.Export.ns_per_run = None
             && e.Obs.Export.ns_per_run = None
             && not sched_entry
           then
             let pp_f ppf = Format.fprintf ppf "%g" in
             List.iter
               (fun (k, bv) ->
                 if List.mem k ignore_keys then ()
                 else
                 match List.assoc_opt k e.Obs.Export.breakdown with
                 | Some ev -> check ("breakdown." ^ k) pp_f bv ev
                 | None ->
                   drift :=
                     Printf.sprintf "%s: breakdown key %s disappeared"
                       b.Obs.Export.experiment k
                     :: !drift)
               b.Obs.Export.breakdown);
          match (b.Obs.Export.ns_per_run, e.Obs.Export.ns_per_run) with
          | Some old_ns, Some new_ns when old_ns > 0.0 ->
            Format.printf "  %-44s wall %+.0f%% (informational)@."
              b.Obs.Export.experiment
              ((new_ns -. old_ns) /. old_ns *. 100.0)
          | _ -> ())
      baseline;
    if !compared = 0 then begin
      Format.printf "baseline %s shares no experiments with this run@." path;
      exit 1
    end;
    if !drift <> [] then begin
      Format.printf "SEMANTIC DRIFT vs %s:@." path;
      List.iter (Format.printf "  %s@.") (List.rev !drift);
      exit 1
    end;
    Format.printf "baseline check ok: %d entries, no semantic drift@."
      !compared

(* ------------------------------------------------------------------ *)
(* Bechamel timing of each experiment's core computation               *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let fib10 = Dlx.Progs.fib 10 in
  let bheavy = Dlx.Progs.branch_heavy 8 in
  let toy () = Core.Toy.transform ~program:Core.Toy.default_program () in
  let dlx_tr = dlx_transform fib10 in
  let dlx_c = Pipeline.Pipesem.compile dlx_tr in
  let bp_tr = dlx_transform ~variant:Dlx.Seq_dlx.Branch_predict bheavy in
  let il_tr = dlx_transform ~options:interlock_only_options fib10 in
  [
    Test.make ~name:"T1_sequential_run_toy"
      (Staged.stage (fun () ->
           Machine.Seqsem.run ~max_instructions:6
             (Core.Toy.machine ~program:Core.Toy.default_program)));
    Test.make ~name:"F1_verilog_emission"
      (Staged.stage (fun () -> Core.verilog dlx_tr));
    Test.make ~name:"F2_dlx_transformation"
      (Staged.stage (fun () -> dlx_transform fib10));
    Test.make ~name:"C1_consistency_check_fib"
      (Staged.stage (fun () -> fst (run_kernel fib10)));
    Test.make ~name:"S1_branch_predict_simulation"
      (Staged.stage (fun () ->
           Pipeline.Pipesem.run ~stop_after:bheavy.Dlx.Progs.dyn_instructions
             bp_tr));
    Test.make ~name:"P1_obligation_discharge_toy"
      (Staged.stage (fun () -> Proof_engine.Obligation.discharge_all (toy ())));
    Test.make ~name:"E3_network_costing_32"
      (Staged.stage (fun () ->
           Pipeline.Mux_impl.measure ~sources:32 ~data_width:32));
    Test.make ~name:"E4_pipelined_simulation_fib"
      (Staged.stage (fun () ->
           Pipeline.Pipesem.run_compiled
             ~stop_after:fib10.Dlx.Progs.dyn_instructions dlx_c));
    Test.make ~name:"E4_interpreted_simulation_fib"
      (Staged.stage (fun () ->
           Pipeline.Pipesem.run_reference
             ~stop_after:fib10.Dlx.Progs.dyn_instructions dlx_tr));
    Test.make ~name:"E4_plan_compilation_dlx"
      (Staged.stage (fun () -> Pipeline.Pipesem.compile dlx_tr));
    Test.make ~name:"E5_interlock_only_simulation"
      (Staged.stage (fun () ->
           Pipeline.Pipesem.run ~stop_after:fib10.Dlx.Progs.dyn_instructions
             il_tr));
    Test.make ~name:"E6_workload_generation"
      (Staged.stage (fun () ->
           Workload.Gen.generate ~seed:9 ~length:80 Workload.Gen.typical));
    Test.make ~name:"E7_deep_transform_n10"
      (Staged.stage (fun () ->
           Core.Elastic.transform ~n:10
             ~program:(Core.Elastic.chain_program ~late:true ~length:8)
             ()));
  ]

let run_bechamel () =
  section "TIMING" "Bechamel micro-benchmarks (one per experiment)";
  Obs.Counters.with_disabled @@ fun () ->
  let open Bechamel in
  let open Toolkit in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let tests = Test.make_grouped ~name:"experiments" (bechamel_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  in
  Format.printf "  %-44s %16s %8s@." "experiment" "ns/run" "r^2";
  List.iter
    (fun (name, ols) ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some [ e ] ->
          add_entry (Obs.Export.entry ~ns_per_run:e ("TIMING." ^ name));
          Printf.sprintf "%.0f" e
        | Some _ | None -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.3f" r
        | None -> "n/a"
      in
      Format.printf "  %-44s %16s %8s@." name est r2)
    (List.sort compare rows)

(* --smoke: the fast subset wired into the @check alias — T1, F2 and
   C1 on one tiny kernel, the compiled-vs-interpreted perf check, the
   parallel-sweep determinism check, the batched-vs-rebuild BMC/sweep
   agreement check, the fault-injection smoke campaign, plus the
   export round-trip check. *)
let smoke ~jobs () =
  Obs.Counters.reset ();
  table1 ();
  figure2 ();
  case_study ~kernels:[ Dlx.Progs.fib 5 ] ();
  perf_compiled ();
  perf_parallel ~jobs ();
  perf_bmc ~jobs ();
  perf_bmc_lanes ~jobs ();
  perf_opt ~jobs ();
  campaign_smoke ~jobs ();
  counters_section ();
  serve_robustness ();
  write_export ();
  Format.printf "@.smoke ok.@."

let full ~jobs () =
  Obs.Counters.reset ();
  table1 ();
  figure1 ();
  figure2 ();
  case_study ();
  speculation ();
  proof ();
  symbolic_proofs ();
  mux_sweep ();
  speedup ();
  forwarding_value ();
  branch_sweep ();
  depth_sweep ();
  memory_latency_sweep ();
  retime_sweep ();
  perf_compiled ();
  perf_parallel ~jobs ();
  perf_bmc ~jobs ();
  perf_bmc_lanes ~jobs ();
  perf_opt ~jobs ();
  campaign_smoke ~jobs ();
  run_bechamel ();
  counters_section ();
  serve_robustness ();
  write_export ();
  Format.printf "@.all experiments reproduced.@."

(* ------------------------------------------------------------------ *)
(* Trend gate (--history): regress this run against the per-commit
   history, then append it as a new record.  WORK.* rows gate exactly
   against the newest record; timing rows gate on a tolerance band
   over the last K records (see Obs.History).  Appending happens only
   after every other guard passed, so the history holds green runs.   *)
(* ------------------------------------------------------------------ *)

let run_history ~path =
  section "HISTORY" (Printf.sprintf "Per-commit trend gate - %s" path);
  let entries = List.rev !export_entries in
  let history =
    if not (Sys.file_exists path) then begin
      Format.printf "  no history yet; this run seeds the first record@.";
      []
    end
    else
      match Obs.History.read ~path with
      | Ok h -> h
      | Error msg ->
        Format.printf "history %s unreadable: %s@." path msg;
        exit 1
  in
  let gates = Obs.History.trend_gate ~history entries in
  if gates <> [] then begin
    Format.printf "TREND GATE FAILED: %d regressed row(s) vs %s@."
      (List.length gates) path;
    Format.printf "%a" Obs.History.pp_gates gates;
    exit 1
  end;
  let r =
    {
      Obs.History.commit = Obs.History.current_commit ();
      epoch = Unix.time ();
      entries;
    }
  in
  Obs.History.append ~path r;
  Format.printf "  trend gate ok (%d prior record(s)); appended %s@."
    (List.length history) r.Obs.History.commit

let () =
  let argv = Sys.argv in
  let baseline = ref None in
  let jobs = ref (Exec.Pool.default_size ()) in
  let out = ref None in
  let rebaseline = ref false in
  let history = ref false in
  let history_file = ref None in
  let ignore_keys = ref [] in
  Array.iteri
    (fun i a ->
      let value () =
        if i + 1 < Array.length argv then Some argv.(i + 1) else None
      in
      match a with
      | "--baseline" -> baseline := value ()
      | "--out" -> out := value ()
      | "--rebaseline" -> rebaseline := true
      | "--history" -> history := true
      | "--history-file" ->
        history := true;
        history_file := value ()
      | "--no-opt" ->
        (* The whole process compiles raw tapes; with --baseline and
           --ignore plan_ops this proves the optimizer changes nothing
           semantic anywhere in the smoke run. *)
        Hw.Plan.set_optimize_default false
      | "--ignore" -> (
        match value () with
        | Some ks ->
          ignore_keys := String.split_on_char ',' ks @ !ignore_keys
        | None ->
          Format.printf "--ignore needs a comma-separated key list@.";
          exit 2)
      | "-j" | "--jobs" -> (
        match value () with
        | Some "max" -> jobs := Exec.Pool.default_size ()
        | Some n -> (
          match int_of_string_opt n with
          | Some n when n >= 1 -> jobs := n
          | _ ->
            Format.printf "bad -j value %S (want a positive int or max)@." n;
            exit 2)
        | None ->
          Format.printf "-j needs a value@.";
          exit 2)
      | _ -> ())
    argv;
  (match (!out, !rebaseline) with
  | Some _, true ->
    Format.printf "--out and --rebaseline are mutually exclusive@.";
    exit 2
  | Some p, false -> export_path := p
  | None, true ->
    (* The committed baseline, anchored at the repository root so the
       flag works from dune's _build mirror too. *)
    let root =
      match Obs.History.repo_root () with Some r -> r | None -> "."
    in
    export_path := Filename.concat root "BENCH_pipeline.json"
  | None, false -> ());
  if Array.exists (( = ) "--smoke") argv then smoke ~jobs:!jobs ()
  else full ~jobs:!jobs ();
  (match !baseline with
  | None -> ()
  | Some path -> compare_baseline ~ignore_keys:!ignore_keys ~path ());
  if !history then
    run_history
      ~path:
        (match !history_file with
        | Some p -> p
        | None -> Obs.History.default_path ())
