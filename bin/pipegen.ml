(* pipegen: the pipeline transformation tool as a command line.

   Takes a built-in prepared sequential machine, performs the paper's
   steps 3) and 4) — forwarding and interlock synthesis plus the stall
   engine and speculation support — and emits reports, HDL, the
   generated proof, or runs the verification. *)

let machines = [ "toy3"; "dlx5"; "dlx6"; "dlx5_intr"; "dlx5_bp" ]

let kernels () =
  List.map
    (fun (p : Dlx.Progs.t) -> (p.Dlx.Progs.prog_name, p))
    (Dlx.Progs.all_kernels @ [ Dlx.Progs.overflow_trap ])

(* Every command views the selected machine through the same compiled
   simulation handle: one Pipesem.compile per invocation, shared by
   run/trace/stats/verify. *)
type selection = {
  sim : Workload.Sim.t;
  reference : Machine.Seqsem.trace option;
}

let selection ?reference ~instructions tr =
  { sim = Workload.Sim.make ?reference ~instructions tr; reference }

let sel_tr s = Workload.Sim.transform s.sim
let sel_instructions s = Workload.Sim.instructions s.sim

let unknown ~what ~name ~available =
  Format.eprintf "unknown %s %s; available: %s@." what name
    (String.concat ", " available);
  exit 2

(* Exact kernel name, or a unique prefix of one ("fib" -> "fib_10"). *)
let find_kernel name =
  let ks = kernels () in
  match List.assoc_opt name ks with
  | Some p -> p
  | None -> (
    match
      List.filter
        (fun (n, _) -> String.starts_with ~prefix:name n)
        ks
    with
    | [ (_, p) ] -> p
    | _ -> unknown ~what:"kernel" ~name ~available:(List.map fst ks))

let select ~machine ~kernel ~program_file ~interlock_only ~tree =
  let options =
    {
      Pipeline.Fwd_spec.mode =
        (if interlock_only then Pipeline.Fwd_spec.Interlock_only
         else Pipeline.Fwd_spec.Full);
      impl = tree;
    }
  in
  let dlx variant =
    let p =
      match (program_file, kernel) with
      | Some path, _ -> (
        match Dlx.Asm_parser.parse_file path with
        | items ->
          (* The parser's "halt" already expanded to the idiom; strip it
             so Progs.make (which appends its own) measures the dynamic
             count correctly. *)
          let body =
            let rec drop_halt = function
              | [] -> []
              | Dlx.Asm.Label "$halt" :: _ -> []
              | item :: rest -> item :: drop_halt rest
            in
            drop_halt items
          in
          let config =
            match variant with
            | Dlx.Seq_dlx.With_interrupts { sisr } ->
              { Dlx.Refmodel.with_interrupts = true; sisr }
            | Dlx.Seq_dlx.Base | Dlx.Seq_dlx.Branch_predict ->
              Dlx.Refmodel.default_config
          in
          Dlx.Progs.make ~config (Filename.basename path) body
        | exception Dlx.Asm_parser.Parse_error { line; message } ->
          Format.eprintf "%s:%d: %s@." path line message;
          exit 2)
      | None, None -> Dlx.Progs.fib 10
      | None, Some name -> find_kernel name
    in
    let program = Dlx.Progs.program p in
    let n = p.Dlx.Progs.dyn_instructions in
    selection
      ~reference:
        (Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data variant ~program
           ~instructions:n)
      ~instructions:n
      (Dlx.Seq_dlx.transform ~options ~data:p.Dlx.Progs.data variant ~program)
  in
  let dlx6 () =
    (* The DLX with a two-stage memory, derived mechanically by
       splitting EX/MEM (Machine.Retime). *)
    let p =
      match kernel with
      | None -> Dlx.Progs.fib 10
      | Some name -> find_kernel name
    in
    let m =
      Machine.Retime.insert_passthrough
        (Dlx.Seq_dlx.machine ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
           ~program:(Dlx.Progs.program p))
        ~at:3
    in
    selection
      ~reference:
        (Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
           ~program:(Dlx.Progs.program p)
           ~instructions:p.Dlx.Progs.dyn_instructions)
      ~instructions:p.Dlx.Progs.dyn_instructions
      (Pipeline.Transform.run ~options
         ~hints:(Dlx.Seq_dlx.hints Dlx.Seq_dlx.Base)
         m)
  in
  match machine with
  | "dlx6" -> dlx6 ()
  | "toy3" ->
    selection
      ~instructions:(List.length Core.Toy.default_program)
      (Core.Toy.transform ~options ~program:Core.Toy.default_program ())
  | "dlx5" -> dlx Dlx.Seq_dlx.Base
  | "dlx5_intr" -> dlx (Dlx.Seq_dlx.With_interrupts { sisr = 8 })
  | "dlx5_bp" -> dlx Dlx.Seq_dlx.Branch_predict
  | other -> unknown ~what:"machine" ~name:other ~available:machines

open Cmdliner

let machine_arg =
  let doc =
    Printf.sprintf "Machine to transform (%s)." (String.concat ", " machines)
  in
  Arg.(value & pos 0 string "dlx5" & info [] ~docv:"MACHINE" ~doc)

let kernel_arg =
  let doc = "DLX kernel to load into instruction memory." in
  Arg.(value & opt (some string) None & info [ "kernel"; "k" ] ~docv:"NAME" ~doc)

let program_arg =
  let doc = "DLX assembly file to load into instruction memory." in
  Arg.(value & opt (some file) None & info [ "program"; "p" ] ~docv:"FILE" ~doc)

let interlock_arg =
  let doc = "Interlock-only mode: no forwarding paths (baseline E5)." in
  Arg.(value & flag & info [ "interlock-only" ] ~doc)

let tree_arg =
  let doc =
    "Selection network implementation: chain (default, figure 2), tree \
     (find-first-one + balanced multiplexers) or bus (tri-state drivers)."
  in
  Arg.(
    value
    & opt (enum [ ("chain", Hw.Circuits.Chain); ("tree", Hw.Circuits.Tree);
                  ("bus", Hw.Circuits.Bus) ])
        Hw.Circuits.Chain
    & info [ "impl" ] ~docv:"IMPL" ~doc)

let jobs_arg =
  let doc =
    "Parallelism for verification: the consistency run, obligation suite and \
     checkers fan out over an OCaml domain pool of $(docv) domains (results \
     are bit-identical at any value).  Defaults to the host's recommended \
     domain count; 1 disables the pool."
  in
  Arg.(
    value
    & opt int (Exec.Pool.default_size ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* Run [f pool] inside a pool of [jobs] domains; [-j 1] passes no pool
   at all (the pure serial path, not even an inline pool). *)
let with_jobs jobs f =
  if jobs < 1 then begin
    Format.eprintf "-j must be at least 1@.";
    exit 2
  end
  else if jobs = 1 then f None
  else Exec.Pool.with_pool ~size:jobs (fun pool -> f (Some pool))

let common machine kernel program_file interlock tree =
  select ~machine ~kernel ~program_file ~interlock_only:interlock ~tree

let show_cmd =
  let run machine kernel program_file interlock tree =
    let s = common machine kernel program_file interlock tree in
    Format.printf "%a@." Machine.Spec.pp_summary
      (sel_tr s).Pipeline.Transform.base;
    Format.printf "%a" Pipeline.Report.pp_inventory (sel_tr s);
    `Ok ()
  in
  Cmd.v (Cmd.info "show" ~doc:"Print the machine and the generated hardware.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg))

let verilog_cmd =
  let run machine kernel program_file interlock tree =
    let s = common machine kernel program_file interlock tree in
    print_string (Core.verilog (sel_tr s));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "verilog" ~doc:"Emit the generated control logic as HDL.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg))

let verify_cmd =
  let run machine kernel program_file interlock tree jobs =
    let s = common machine kernel program_file interlock tree in
    let v =
      with_jobs jobs @@ fun pool ->
      Core.verify ?reference:s.reference ?pool
        ~max_instructions:(sel_instructions s)
        ~compiled:(Workload.Sim.compiled s.sim) (sel_tr s)
    in
    Format.printf "%a" Proof_engine.Consistency.pp_report
      v.Core.consistency;
    Format.printf "%a" Proof_engine.Liveness.pp_report v.Core.liveness;
    let cov =
      Pipeline.Coverage.measure ~stop_after:(sel_instructions s) (sel_tr s)
    in
    Format.printf "%a" Pipeline.Coverage.pp cov;
    List.iter (Format.printf "  coverage hole: %s@.")
      (Pipeline.Coverage.holes cov);
    Format.printf "obligations:@.%a" Proof_engine.Obligation.pp
      v.Core.obligations;
    if Core.verified v then begin
      Format.printf "VERIFIED@.";
      `Ok ()
    end
    else begin
      Format.printf "VERIFICATION FAILED@.";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Run the generated proof obligations and the checkers.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ jobs_arg))

let proof_cmd =
  let run machine kernel program_file interlock tree jobs =
    let s = common machine kernel program_file interlock tree in
    let v =
      with_jobs jobs @@ fun pool ->
      Core.verify ?reference:s.reference ?pool
        ~max_instructions:(sel_instructions s)
        ~compiled:(Workload.Sim.compiled s.sim) (sel_tr s)
    in
    print_string (Core.proof_script (sel_tr s) v);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "proof"
       ~doc:"Emit the PVS-style proof theory with discharge annotations.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ jobs_arg))

let run_cmd =
  let diagram_arg =
    let doc = "Print the instruction/cycle pipeline diagram." in
    Cmdliner.Arg.(value & flag & info [ "diagram"; "d" ] ~doc)
  in
  let run machine kernel program_file interlock tree diagram =
    let s = common machine kernel program_file interlock tree in
    let result =
      if diagram then begin
        let d, result =
          Pipeline.Diagram.capture ~stop_after:(sel_instructions s) (sel_tr s)
        in
        print_string d;
        result
      end
      else Workload.Sim.run s.sim
    in
    let row =
      Workload.Sim.stats_row ~label:machine s.sim result.Pipeline.Pipesem.stats
    in
    Format.printf "%a" Workload.Stats.pp_table [ row ];
    (match result.Pipeline.Pipesem.outcome with
    | Pipeline.Pipesem.Completed -> ()
    | Pipeline.Pipesem.Deadlocked ->
      Format.printf "DEADLOCK@.";
      exit 1
    | Pipeline.Pipesem.Out_of_cycles ->
      Format.printf "out of cycles@.";
      exit 1);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate the pipelined machine and report CPI.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ diagram_arg))

let trace_cmd =
  let out_arg =
    let doc = "Output VCD file." in
    Cmdliner.Arg.(
      value & opt string "pipeline.vcd" & info [ "output"; "o" ] ~docv:"FILE" ~doc)
  in
  let run machine kernel program_file interlock tree out =
    let s = common machine kernel program_file interlock tree in
    let result = Workload.Sim.trace_vcd ~path:out s.sim in
    Format.printf "wrote %s (%d cycles, %d instructions)@." out
      result.Pipeline.Pipesem.stats.Pipeline.Pipesem.cycles
      result.Pipeline.Pipesem.stats.Pipeline.Pipesem.retired;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Simulate and dump a VCD waveform of the stall engine.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ out_arg))

let dot_cmd =
  let run machine kernel program_file interlock tree =
    let s = common machine kernel program_file interlock tree in
    print_string (Pipeline.Dot.forwarding_graph (sel_tr s));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:
         "Emit a Graphviz diagram of the pipeline and its forwarding paths.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg))

let machine_opt_arg =
  let doc =
    Printf.sprintf "Machine to transform (%s)." (String.concat ", " machines)
  in
  Arg.(
    value & opt string "dlx5" & info [ "machine"; "m" ] ~docv:"MACHINE" ~doc)

let stats_cmd =
  let json_arg =
    let doc = "Emit the hazard summary as JSON on stdout." in
    Cmdliner.Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run machine kernel program_file interlock tree json =
    let s = common machine kernel program_file interlock tree in
    let result, summary = Workload.Sim.attribute s.sim in
    (match result.Pipeline.Pipesem.outcome with
    | Pipeline.Pipesem.Completed -> ()
    | Pipeline.Pipesem.Deadlocked ->
      Format.eprintf "DEADLOCK@.";
      exit 1
    | Pipeline.Pipesem.Out_of_cycles ->
      Format.eprintf "out of cycles@.";
      exit 1);
    if json then
      print_endline (Obs.Json.to_string (Obs.Hazard.summary_to_json summary))
    else begin
      Format.printf "%a" Obs.Hazard.pp_summary summary;
      Format.printf "%a" Obs.Hazard.pp_decomposition
        (Obs.Hazard.decompose summary)
    end;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Simulate with hazard attribution and print the CPI decomposition \
          (CPI = 1 + stall components, exact cycle accounting).")
    Term.(
      ret
        (const run $ machine_opt_arg $ kernel_arg $ program_arg
       $ interlock_arg $ tree_arg $ json_arg))

let profile_cmd =
  let out_arg =
    let doc = "Output trace-event JSON file (Perfetto / chrome://tracing)." in
    Cmdliner.Arg.(
      value
      & opt string "pipegen_trace.json"
      & info [ "output"; "o" ] ~docv:"FILE" ~doc)
  in
  let run machine kernel program_file interlock tree out jobs =
    Obs.Span.set_enabled true;
    let s = common machine kernel program_file interlock tree in
    let (_ : Pipeline.Pipesem.result) = Workload.Sim.run s.sim in
    let v =
      with_jobs jobs @@ fun pool ->
      Core.verify ?reference:s.reference ?pool
        ~max_instructions:(sel_instructions s)
        ~compiled:(Workload.Sim.compiled s.sim) (sel_tr s)
    in
    let records = Obs.Span.records () in
    Obs.Trace_event.write_file ~path:out ~process_name:"pipegen" records;
    Format.printf "wrote %s (%d spans, verified=%b)@." out
      (List.length records) (Core.verified v);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run transform, simulation and verification with phase profiling \
          enabled and write a Chrome trace-event JSON.")
    Term.(
      ret
        (const run $ machine_opt_arg $ kernel_arg $ program_arg
       $ interlock_arg $ tree_arg $ out_arg $ jobs_arg))

let symbolic_cmd =
  let insn_arg =
    let doc = "Number of instructions to prove (BDD sizes grow with it)." in
    Cmdliner.Arg.(value & opt int 8 & info [ "instructions"; "n" ] ~doc)
  in
  let run machine kernel program_file interlock tree insns =
    let s = common machine kernel program_file interlock tree in
    let outcome =
      Proof_engine.Symsim.check
        ~instructions:(min insns (sel_instructions s))
        (sel_tr s)
    in
    Format.printf "%a@." Proof_engine.Symsim.pp_outcome outcome;
    match outcome with
    | Proof_engine.Symsim.Proved _ -> `Ok ()
    | Proof_engine.Symsim.Control_depends_on_data _ -> `Ok ()
    | Proof_engine.Symsim.Mismatch _ -> exit 1
  in
  Cmd.v
    (Cmd.info "symbolic"
       ~doc:
         "Prove data consistency for all initial register-file contents at           once (symbolic co-simulation).")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ insn_arg))

let () =
  let info =
    Cmd.info "pipegen" ~version:"1.0"
      ~doc:
        "Automated pipeline design: transform a prepared sequential machine \
         into a pipelined machine with synthesized forwarding and interlock."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ show_cmd; verilog_cmd; verify_cmd; proof_cmd; run_cmd; stats_cmd;
            profile_cmd; trace_cmd; dot_cmd; symbolic_cmd ]))
