(* pipegen: the pipeline transformation tool as a command line.

   Takes a built-in prepared sequential machine, performs the paper's
   steps 3) and 4) — forwarding and interlock synthesis plus the stall
   engine and speculation support — and emits reports, HDL, the
   generated proof, or runs the verification. *)

let machines = [ "toy3"; "dlx5"; "dlx6"; "dlx5_intr"; "dlx5_bp" ]

(* Every user-facing error funnels through [guard]: [Usage] is a
   command-line mistake (exit 2), [Failed_check] a verification or
   campaign failure (exit 3), anything else an internal error reported
   without a backtrace (exit 1). *)
exception Usage of string
exception Failed_check of string

let guard f =
  try f () with
  | Usage msg ->
    Format.eprintf "pipegen: %s@." msg;
    exit 2
  | Failed_check msg ->
    Format.eprintf "pipegen: %s@." msg;
    exit 3
  | Pipeline.Transform.Transform_error msg ->
    Format.eprintf "pipegen: transform error: %s@." msg;
    exit 1
  | Hw.Expr.Ill_typed msg ->
    Format.eprintf "pipegen: ill-typed expression: %s@." msg;
    exit 1
  | Sys_error msg | Failure msg ->
    Format.eprintf "pipegen: %s@." msg;
    exit 1

let kernels () =
  List.map
    (fun (p : Dlx.Progs.t) -> (p.Dlx.Progs.prog_name, p))
    (Dlx.Progs.all_kernels @ [ Dlx.Progs.overflow_trap ])

(* Every command views the selected machine through the same compiled
   simulation handle: one Pipesem.compile per invocation, shared by
   run/trace/stats/verify. *)
type selection = {
  sim : Workload.Sim.t;
  reference : Machine.Seqsem.trace option;
  disasm : (int -> string option) option;
}

let selection ?reference ?disasm ~instructions tr =
  { sim = Workload.Sim.make ?reference ~instructions tr; reference; disasm }

let sel_tr s = Workload.Sim.transform s.sim
let sel_instructions s = Workload.Sim.instructions s.sim

let unknown ~what ~name ~available =
  raise
    (Usage
       (Printf.sprintf "unknown %s %s; available: %s" what name
          (String.concat ", " available)))

(* Exact kernel name, or a unique prefix of one ("fib" -> "fib_10"). *)
let find_kernel name =
  let ks = kernels () in
  match List.assoc_opt name ks with
  | Some p -> p
  | None -> (
    match
      List.filter
        (fun (n, _) -> String.starts_with ~prefix:name n)
        ks
    with
    | [ (_, p) ] -> p
    | _ -> unknown ~what:"kernel" ~name ~available:(List.map fst ks))

let select ~machine ~kernel ~program_file ~interlock_only ~tree =
  let options =
    {
      Pipeline.Fwd_spec.mode =
        (if interlock_only then Pipeline.Fwd_spec.Interlock_only
         else Pipeline.Fwd_spec.Full);
      impl = tree;
    }
  in
  let dlx variant =
    let p =
      match (program_file, kernel) with
      | Some path, _ -> (
        match Dlx.Asm_parser.parse_file path with
        | items ->
          (* The parser's "halt" already expanded to the idiom; strip it
             so Progs.make (which appends its own) measures the dynamic
             count correctly. *)
          let body =
            let rec drop_halt = function
              | [] -> []
              | Dlx.Asm.Label "$halt" :: _ -> []
              | item :: rest -> item :: drop_halt rest
            in
            drop_halt items
          in
          let config =
            match variant with
            | Dlx.Seq_dlx.With_interrupts { sisr } ->
              { Dlx.Refmodel.with_interrupts = true; sisr }
            | Dlx.Seq_dlx.Base | Dlx.Seq_dlx.Branch_predict ->
              Dlx.Refmodel.default_config
          in
          Dlx.Progs.make ~config (Filename.basename path) body
        | exception Dlx.Asm_parser.Parse_error { line; message } ->
          raise (Usage (Printf.sprintf "%s:%d: %s" path line message)))
      | None, None -> Dlx.Progs.fib 10
      | None, Some name -> find_kernel name
    in
    let program = Dlx.Progs.program p in
    let n = p.Dlx.Progs.dyn_instructions in
    let reference =
      Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data variant ~program
        ~instructions:n
    in
    selection ~reference
      ~disasm:(Dlx.Seq_dlx.disasm ~reference ~program)
      ~instructions:n
      (Dlx.Seq_dlx.transform ~options ~data:p.Dlx.Progs.data variant ~program)
  in
  let dlx6 () =
    (* The DLX with a two-stage memory, derived mechanically by
       splitting EX/MEM (Machine.Retime). *)
    let p =
      match kernel with
      | None -> Dlx.Progs.fib 10
      | Some name -> find_kernel name
    in
    let m =
      Machine.Retime.insert_passthrough
        (Dlx.Seq_dlx.machine ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
           ~program:(Dlx.Progs.program p))
        ~at:3
    in
    let reference =
      Dlx.Seq_dlx.ref_trace ~data:p.Dlx.Progs.data Dlx.Seq_dlx.Base
        ~program:(Dlx.Progs.program p)
        ~instructions:p.Dlx.Progs.dyn_instructions
    in
    selection ~reference
      ~disasm:(Dlx.Seq_dlx.disasm ~reference ~program:(Dlx.Progs.program p))
      ~instructions:p.Dlx.Progs.dyn_instructions
      (Pipeline.Transform.run ~options
         ~hints:(Dlx.Seq_dlx.hints Dlx.Seq_dlx.Base)
         m)
  in
  match machine with
  | "dlx6" -> dlx6 ()
  | "toy3" ->
    selection
      ~instructions:(List.length Core.Toy.default_program)
      (Core.Toy.transform ~options ~program:Core.Toy.default_program ())
  | "dlx5" -> dlx Dlx.Seq_dlx.Base
  | "dlx5_intr" -> dlx (Dlx.Seq_dlx.With_interrupts { sisr = 8 })
  | "dlx5_bp" -> dlx Dlx.Seq_dlx.Branch_predict
  | other -> unknown ~what:"machine" ~name:other ~available:machines

open Cmdliner

let machine_arg =
  let doc =
    Printf.sprintf "Machine to transform (%s)." (String.concat ", " machines)
  in
  Arg.(value & pos 0 string "dlx5" & info [] ~docv:"MACHINE" ~doc)

let kernel_arg =
  let doc = "DLX kernel to load into instruction memory." in
  Arg.(value & opt (some string) None & info [ "kernel"; "k" ] ~docv:"NAME" ~doc)

let program_arg =
  let doc = "DLX assembly file to load into instruction memory." in
  Arg.(value & opt (some file) None & info [ "program"; "p" ] ~docv:"FILE" ~doc)

let interlock_arg =
  let doc = "Interlock-only mode: no forwarding paths (baseline E5)." in
  Arg.(value & flag & info [ "interlock-only" ] ~doc)

let tree_arg =
  let doc =
    "Selection network implementation: chain (default, figure 2), tree \
     (find-first-one + balanced multiplexers) or bus (tri-state drivers)."
  in
  Arg.(
    value
    & opt (enum [ ("chain", Hw.Circuits.Chain); ("tree", Hw.Circuits.Tree);
                  ("bus", Hw.Circuits.Bus) ])
        Hw.Circuits.Chain
    & info [ "impl" ] ~docv:"IMPL" ~doc)

let jobs_arg =
  let doc =
    "Parallelism for verification: the consistency run, obligation suite and \
     checkers fan out over an OCaml domain pool of $(docv) domains (results \
     are bit-identical at any value).  Defaults to the host's recommended \
     domain count; 1 disables the pool."
  in
  Arg.(
    value
    & opt int (Exec.Pool.default_size ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* Run [f pool] inside a pool of [jobs] domains; [-j 1] passes no pool
   at all (the pure serial path, not even an inline pool). *)
let with_jobs jobs f =
  if jobs < 1 then raise (Usage "-j must be at least 1")
  else if jobs = 1 then f None
  else Exec.Pool.with_pool ~size:jobs (fun pool -> f (Some pool))

let common machine kernel program_file interlock tree =
  select ~machine ~kernel ~program_file ~interlock_only:interlock ~tree

let show_cmd =
  let run machine kernel program_file interlock tree =
    guard @@ fun () ->
    let s = common machine kernel program_file interlock tree in
    Format.printf "%a@." Machine.Spec.pp_summary
      (sel_tr s).Pipeline.Transform.base;
    Format.printf "%a" Pipeline.Report.pp_inventory (sel_tr s);
    `Ok ()
  in
  Cmd.v (Cmd.info "show" ~doc:"Print the machine and the generated hardware.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg))

let verilog_cmd =
  let run machine kernel program_file interlock tree =
    guard @@ fun () ->
    let s = common machine kernel program_file interlock tree in
    print_string (Core.verilog (sel_tr s));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "verilog" ~doc:"Emit the generated control logic as HDL.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg))

let verify_cmd =
  let run machine kernel program_file interlock tree jobs =
    guard @@ fun () ->
    let s = common machine kernel program_file interlock tree in
    let v =
      with_jobs jobs @@ fun pool ->
      Core.verify ?reference:s.reference ?pool
        ~max_instructions:(sel_instructions s)
        ~compiled:(Workload.Sim.compiled s.sim) (sel_tr s)
    in
    Format.printf "%a" Proof_engine.Consistency.pp_report
      v.Core.consistency;
    Format.printf "%a" Proof_engine.Liveness.pp_report v.Core.liveness;
    let cov =
      Pipeline.Coverage.measure ~stop_after:(sel_instructions s) (sel_tr s)
    in
    Format.printf "%a" Pipeline.Coverage.pp cov;
    List.iter (Format.printf "  coverage hole: %s@.")
      (Pipeline.Coverage.holes cov);
    Format.printf "obligations:@.%a" Proof_engine.Obligation.pp
      v.Core.obligations;
    if Core.verified v then begin
      Format.printf "VERIFIED@.";
      `Ok ()
    end
    else begin
      Format.printf "VERIFICATION FAILED@.";
      raise (Failed_check "verification failed")
    end
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Run the generated proof obligations and the checkers.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ jobs_arg))

let proof_cmd =
  let run machine kernel program_file interlock tree jobs =
    guard @@ fun () ->
    let s = common machine kernel program_file interlock tree in
    let v =
      with_jobs jobs @@ fun pool ->
      Core.verify ?reference:s.reference ?pool
        ~max_instructions:(sel_instructions s)
        ~compiled:(Workload.Sim.compiled s.sim) (sel_tr s)
    in
    print_string (Core.proof_script (sel_tr s) v);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "proof"
       ~doc:"Emit the PVS-style proof theory with discharge annotations.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ jobs_arg))

let run_cmd =
  let diagram_arg =
    let doc = "Print the instruction/cycle pipeline diagram." in
    Cmdliner.Arg.(value & flag & info [ "diagram"; "d" ] ~doc)
  in
  let run machine kernel program_file interlock tree diagram =
    guard @@ fun () ->
    let s = common machine kernel program_file interlock tree in
    let result =
      if diagram then begin
        let d, result =
          Pipeline.Diagram.capture ~stop_after:(sel_instructions s) (sel_tr s)
        in
        print_string d;
        result
      end
      else Workload.Sim.run s.sim
    in
    let row =
      Workload.Sim.stats_row ~label:machine s.sim result.Pipeline.Pipesem.stats
    in
    Format.printf "%a" Workload.Stats.pp_table [ row ];
    (match result.Pipeline.Pipesem.outcome with
    | Pipeline.Pipesem.Completed -> ()
    | Pipeline.Pipesem.Deadlocked -> raise (Failed_check "simulation deadlocked")
    | Pipeline.Pipesem.Out_of_cycles ->
      raise (Failed_check "simulation ran out of cycles"));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate the pipelined machine and report CPI.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ diagram_arg))

let trace_cmd =
  let out_arg =
    let doc = "Output VCD file." in
    Cmdliner.Arg.(
      value & opt string "pipeline.vcd" & info [ "output"; "o" ] ~docv:"FILE" ~doc)
  in
  let run machine kernel program_file interlock tree out =
    guard @@ fun () ->
    let s = common machine kernel program_file interlock tree in
    let result = Workload.Sim.trace_vcd ~path:out s.sim in
    Format.printf "wrote %s (%d cycles, %d instructions)@." out
      result.Pipeline.Pipesem.stats.Pipeline.Pipesem.cycles
      result.Pipeline.Pipesem.stats.Pipeline.Pipesem.retired;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Simulate and dump a VCD waveform of the stall engine.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ out_arg))

let dot_cmd =
  let run machine kernel program_file interlock tree =
    guard @@ fun () ->
    let s = common machine kernel program_file interlock tree in
    print_string (Pipeline.Dot.forwarding_graph (sel_tr s));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:
         "Emit a Graphviz diagram of the pipeline and its forwarding paths.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg))

let machine_opt_arg =
  let doc =
    Printf.sprintf "Machine to transform (%s)." (String.concat ", " machines)
  in
  Arg.(
    value & opt string "dlx5" & info [ "machine"; "m" ] ~docv:"MACHINE" ~doc)

let stats_cmd =
  let json_arg =
    let doc = "Emit the hazard summary as JSON on stdout." in
    Cmdliner.Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run machine kernel program_file interlock tree json =
    guard @@ fun () ->
    let s = common machine kernel program_file interlock tree in
    let result, summary = Workload.Sim.attribute s.sim in
    (match result.Pipeline.Pipesem.outcome with
    | Pipeline.Pipesem.Completed -> ()
    | Pipeline.Pipesem.Deadlocked -> raise (Failed_check "simulation deadlocked")
    | Pipeline.Pipesem.Out_of_cycles ->
      raise (Failed_check "simulation ran out of cycles"));
    if json then
      print_endline (Obs.Json.to_string (Obs.Hazard.summary_to_json summary))
    else begin
      Format.printf "%a" Obs.Hazard.pp_summary summary;
      Format.printf "%a" Obs.Hazard.pp_decomposition
        (Obs.Hazard.decompose summary)
    end;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Simulate with hazard attribution and print the CPI decomposition \
          (CPI = 1 + stall components, exact cycle accounting).")
    Term.(
      ret
        (const run $ machine_opt_arg $ kernel_arg $ program_arg
       $ interlock_arg $ tree_arg $ json_arg))

let profile_cmd =
  let out_arg =
    let doc = "Output trace-event JSON file (Perfetto / chrome://tracing)." in
    Cmdliner.Arg.(
      value
      & opt string "pipegen_trace.json"
      & info [ "output"; "o" ] ~docv:"FILE" ~doc)
  in
  let run machine kernel program_file interlock tree out jobs =
    guard @@ fun () ->
    Obs.Span.set_enabled true;
    let s = common machine kernel program_file interlock tree in
    let (_ : Pipeline.Pipesem.result) = Workload.Sim.run s.sim in
    let v =
      with_jobs jobs @@ fun pool ->
      Core.verify ?reference:s.reference ?pool
        ~max_instructions:(sel_instructions s)
        ~compiled:(Workload.Sim.compiled s.sim) (sel_tr s)
    in
    let records = Obs.Span.records () in
    Obs.Trace_event.write_file ~path:out ~process_name:"pipegen" records;
    Format.printf "wrote %s (%d spans, verified=%b)@." out
      (List.length records) (Core.verified v);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run transform, simulation and verification with phase profiling \
          enabled and write a Chrome trace-event JSON.")
    Term.(
      ret
        (const run $ machine_opt_arg $ kernel_arg $ program_arg
       $ interlock_arg $ tree_arg $ out_arg $ jobs_arg))

let symbolic_cmd =
  let insn_arg =
    let doc = "Number of instructions to prove (BDD sizes grow with it)." in
    Cmdliner.Arg.(value & opt int 8 & info [ "instructions"; "n" ] ~doc)
  in
  let run machine kernel program_file interlock tree insns =
    guard @@ fun () ->
    let s = common machine kernel program_file interlock tree in
    let outcome =
      Proof_engine.Symsim.check
        ~instructions:(min insns (sel_instructions s))
        (sel_tr s)
    in
    Format.printf "%a@." Proof_engine.Symsim.pp_outcome outcome;
    match outcome with
    | Proof_engine.Symsim.Proved _ -> `Ok ()
    | Proof_engine.Symsim.Control_depends_on_data _ -> `Ok ()
    | Proof_engine.Symsim.Mismatch _ ->
      raise (Failed_check "symbolic co-simulation found a mismatch")
  in
  Cmd.v
    (Cmd.info "symbolic"
       ~doc:
         "Prove data consistency for all initial register-file contents at           once (symbolic co-simulation).")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ insn_arg))

let campaign_cmd =
  let seed_arg =
    let doc = "Random seed for mutant enumeration and sampling." in
    Cmdliner.Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let mutants_arg =
    let doc = "Run at most $(docv) mutants (a seeded-shuffle sample)." in
    Cmdliner.Arg.(
      value & opt (some int) None & info [ "mutants"; "n" ] ~docv:"N" ~doc)
  in
  let transients_arg =
    let doc = "Number of seeded transient bit-flip mutants." in
    Cmdliner.Arg.(value & opt int 8 & info [ "transients" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc =
      "Per-mutant budget in seconds; a mutant past it is cancelled \
       cooperatively and classified timed_out."
    in
    Cmdliner.Arg.(value & opt float 30.0 & info [ "timeout" ] ~docv:"SEC" ~doc)
  in
  let hang_arg =
    let doc =
      "Include the wedged-engine mutant (spins until the timeout fires)."
    in
    Cmdliner.Arg.(value & flag & info [ "hang" ] ~doc)
  in
  let bmc_arg =
    let doc =
      "Add an exhaustive program sweep per mutant (toy3 only: every program \
       over a small alphabet)."
    in
    Cmdliner.Arg.(value & flag & info [ "bmc" ] ~doc)
  in
  let checkpoint_arg =
    let doc = "JSON checkpoint file, rewritten after every batch." in
    Cmdliner.Arg.(
      value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc = "Skip mutants already classified in the checkpoint file." in
    Cmdliner.Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let json_arg =
    let doc = "Emit the outcomes as JSON on stdout." in
    Cmdliner.Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run machine kernel program_file interlock tree jobs seed mutants
      transients timeout hang bmc checkpoint resume json =
    guard @@ fun () ->
    let s = common machine kernel program_file interlock tree in
    let tr = sel_tr s in
    let all = Fault.Mutate.enumerate ~transients ~seed ~hang tr in
    let selected =
      match mutants with
      | None -> all
      | Some count ->
        if count < 1 then raise (Usage "--mutants must be at least 1");
        Fault.Mutate.sample ~seed ~count all
    in
    let bmc =
      if not bmc then None
      else if machine <> "toy3" then
        raise (Usage "--bmc is only available for toy3")
      else
        let alphabet =
          [
            Core.Toy.encode ~dst:1 ~src1:1 ~src2:2;
            Core.Toy.encode ~dst:2 ~src1:1 ~src2:1;
            Core.Toy.encode ~dst:1 ~src1:2 ~src2:2;
          ]
        in
        Some ((fun program -> Core.Toy.transform ~program ()), alphabet, 2)
    in
    let bmc_load = (fun program -> Core.Toy.image ~program) in
    let target =
      Fault.Campaign.make_target ?reference:s.reference
        ~instructions:(sel_instructions s) ?disasm:s.disasm ?bmc ~bmc_load tr
    in
    let outcomes, summary =
      with_jobs jobs @@ fun pool ->
      Fault.Campaign.run ?pool ~timeout_s:timeout ?checkpoint ~resume target
        selected
    in
    if json then
      print_endline (Obs.Json.to_string (Fault.Campaign.to_json outcomes))
    else begin
      List.iter
        (fun o -> Format.printf "%a@." Fault.Campaign.pp_outcome o)
        outcomes;
      Format.printf "%a@." Fault.Campaign.pp_summary summary
    end;
    if Fault.Campaign.ok summary then `Ok ()
    else
      raise
        (Failed_check
           (Format.asprintf "campaign failed: %a" Fault.Campaign.pp_summary
              summary))
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Fault-injection detection-coverage campaign: mutate the generated \
          pipeline control, run the verification stack against every mutant, \
          and fail on any mutant that corrupts architectural state without \
          being detected.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ jobs_arg $ seed_arg $ mutants_arg $ transients_arg
       $ timeout_arg $ hang_arg $ bmc_arg $ checkpoint_arg $ resume_arg
       $ json_arg))

let perf_cmd =
  let history_arg =
    let doc =
      "History file to read (default: BENCH_history.jsonl at the repository \
       root)."
    in
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "history" ] ~docv:"FILE" ~doc)
  in
  let diff_arg =
    let doc =
      "Diff two records instead of printing trends.  $(docv) selects a \
       record: a negative index from the end (-1 = newest), a non-negative \
       index from the start, or a commit prefix.  Give the flag twice."
    in
    Cmdliner.Arg.(
      value & opt_all string [] & info [ "diff" ] ~docv:"REC" ~doc)
  in
  let window_arg =
    let doc = "Trend window: span the last $(docv) records." in
    Cmdliner.Arg.(value & opt int 10 & info [ "last" ] ~docv:"K" ~doc)
  in
  let run history diff k =
    guard @@ fun () ->
    let path =
      match history with Some p -> p | None -> Obs.History.default_path ()
    in
    if not (Sys.file_exists path) then
      raise
        (Usage
           (Printf.sprintf
              "no history at %s (seed it with `bench --smoke --history` or \
               `dune build @check`)"
              path));
    let records =
      match Obs.History.read ~path with
      | Ok r -> r
      | Error msg -> raise (Failed_check msg)
    in
    (match diff with
    | [] ->
      Format.printf "perf history %s@." path;
      Format.printf "%a" (Obs.History.pp_trends ~k) records
    | [ a; b ] ->
      let sel spec =
        match Obs.History.select records spec with
        | Ok r -> r
        | Error msg -> raise (Usage msg)
      in
      let ra = sel a and rb = sel b in
      let rows = Obs.History.diff ra rb in
      if rows = [] then
        Format.printf "records %s and %s carry identical metrics@."
          ra.Obs.History.commit rb.Obs.History.commit
      else Format.printf "%a" (Obs.History.pp_diff ~a:ra ~b:rb) rows
    | _ -> raise (Usage "--diff takes exactly two selectors (repeat the flag)"));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "Report trends from the per-commit bench history \
          (BENCH_history.jsonl): deterministic WORK.* scores, timing rows \
          and scheduling counters over the last K records, or an exact diff \
          of any two records.")
    Term.(ret (const run $ history_arg $ diff_arg $ window_arg))

let () =
  let info =
    Cmd.info "pipegen" ~version:"1.0"
      ~doc:
        "Automated pipeline design: transform a prepared sequential machine \
         into a pipelined machine with synthesized forwarding and interlock."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ show_cmd; verilog_cmd; verify_cmd; proof_cmd; run_cmd; stats_cmd;
            profile_cmd; trace_cmd; dot_cmd; symbolic_cmd; campaign_cmd;
            perf_cmd ]))
