(* pipegen: the pipeline transformation tool as a command line.

   Takes a built-in prepared sequential machine, performs the paper's
   steps 3) and 4) — forwarding and interlock synthesis plus the stall
   engine and speculation support — and emits reports, HDL, the
   generated proof, or runs the verification.

   The subcommands are thin adapters over [Service]: argv parses into
   a {!Service.Request.t}, {!Service.Handler.handle} evaluates it, and
   the response's text/exit-code are printed verbatim — the same code
   path [pipegen serve] drives from JSON lines, so the CLI and the
   daemon cannot drift apart. *)

let machines = Service.Machine_spec.names

(* A failed check in the legacy (not yet service-backed) subcommands:
   run, trace, symbolic, perf.  Exit codes come from the one policy in
   {!Service.Response}. *)
exception Failed_check of string

let guard f =
  let fail code msg =
    Format.eprintf "pipegen: %s@." msg;
    exit (Service.Response.error_exit_code code)
  in
  try f () with
  | Service.Handler.Invalid_request msg -> fail Service.Response.Usage msg
  | Failed_check msg -> fail Service.Response.Failed_check msg
  | Pipeline.Transform.Transform_error msg ->
    fail Service.Response.Internal ("transform error: " ^ msg)
  | Hw.Expr.Ill_typed msg ->
    fail Service.Response.Internal ("ill-typed expression: " ^ msg)
  | Sys_error msg | Failure msg -> fail Service.Response.Internal msg

let parse_machine name =
  match Service.Machine_spec.of_string name with
  | Ok m -> m
  | Error msg -> raise (Service.Handler.Invalid_request msg)

let spec machine kernel program_file interlock_only impl =
  {
    Service.Request.machine = parse_machine machine;
    kernel;
    program_file;
    interlock_only;
    impl;
  }

(* Print a response the way the subcommands always have: payload text
   on stdout, the failure diagnostic (if any) as "pipegen: ..." on
   stderr, process status from the response. *)
let finish ?(print = Service.Response.text) resp =
  (match resp.Service.Response.result with
  | Ok payload -> print_string (print payload)
  | Error _ -> ());
  (match Service.Response.failure_message resp with
  | Some msg -> Format.eprintf "pipegen: %s@." msg
  | None -> ());
  match Service.Response.exit_code resp with 0 -> `Ok () | n -> exit n

let sel_tr (s : Service.Handler.selection) =
  Workload.Sim.transform s.Service.Handler.sim

let sel_instructions (s : Service.Handler.selection) =
  Workload.Sim.instructions s.Service.Handler.sim

open Cmdliner

let machine_arg =
  let doc =
    Printf.sprintf "Machine to transform (%s)." (String.concat ", " machines)
  in
  Arg.(value & pos 0 string "dlx5" & info [] ~docv:"MACHINE" ~doc)

let kernel_arg =
  let doc = "DLX kernel to load into instruction memory." in
  Arg.(value & opt (some string) None & info [ "kernel"; "k" ] ~docv:"NAME" ~doc)

let program_arg =
  let doc = "DLX assembly file to load into instruction memory." in
  Arg.(value & opt (some file) None & info [ "program"; "p" ] ~docv:"FILE" ~doc)

let interlock_arg =
  let doc = "Interlock-only mode: no forwarding paths (baseline E5)." in
  Arg.(value & flag & info [ "interlock-only" ] ~doc)

let tree_arg =
  let doc =
    "Selection network implementation: chain (default, figure 2), tree \
     (find-first-one + balanced multiplexers) or bus (tri-state drivers)."
  in
  Arg.(
    value
    & opt (enum [ ("chain", Hw.Circuits.Chain); ("tree", Hw.Circuits.Tree);
                  ("bus", Hw.Circuits.Bus) ])
        Hw.Circuits.Chain
    & info [ "impl" ] ~docv:"IMPL" ~doc)

let jobs_arg =
  let doc =
    "Parallelism for verification: the consistency run, obligation suite and \
     checkers fan out over an OCaml domain pool of $(docv) domains (results \
     are bit-identical at any value).  Defaults to the host's recommended \
     domain count; 1 disables the pool."
  in
  Arg.(
    value
    & opt int (Exec.Pool.default_size ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* Run [f pool] inside a pool of [jobs] domains; [-j 1] passes no pool
   at all (the pure serial path, not even an inline pool). *)
let with_jobs jobs f =
  if jobs < 1 then
    raise (Service.Handler.Invalid_request "-j must be at least 1")
  else if jobs = 1 then f None
  else Exec.Pool.with_pool ~size:jobs (fun pool -> f (Some pool))

let common machine kernel program_file interlock tree =
  Service.Handler.select (spec machine kernel program_file interlock tree)

(* Build the request, evaluate it through the service handler (the
   serve code path), print the response. *)
let dispatch ?id ?jobs ?checkpoint ?resume ?print mk_spec kind =
  guard @@ fun () ->
  let req = Service.Request.make ?id ~spec:(mk_spec ()) kind in
  let resp =
    match jobs with
    | None -> Service.Handler.handle ?checkpoint ?resume req
    | Some jobs ->
      with_jobs jobs @@ fun pool ->
      Service.Handler.handle ?pool ?checkpoint ?resume req
  in
  finish ?print resp

let show_cmd =
  let run machine kernel program_file interlock tree =
    dispatch
      (fun () -> spec machine kernel program_file interlock tree)
      (Service.Request.Transform { verilog = false })
  in
  Cmd.v (Cmd.info "show" ~doc:"Print the machine and the generated hardware.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg))

let verilog_cmd =
  let run machine kernel program_file interlock tree =
    dispatch
      (fun () -> spec machine kernel program_file interlock tree)
      (Service.Request.Transform { verilog = true })
  in
  Cmd.v
    (Cmd.info "verilog" ~doc:"Emit the generated control logic as HDL.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg))

let no_opt_arg =
  let doc =
    "Disable the plan optimizer ({!Hw.Plan.optimize}) for this process: \
     every machine compiles to its raw tape.  Results are bit-identical \
     either way; the flag exists for differential debugging and the bench's \
     no-opt leg."
  in
  Arg.(value & flag & info [ "no-opt" ] ~doc)

let verify_cmd =
  let run machine kernel program_file interlock tree jobs no_opt =
    if no_opt then Hw.Plan.set_optimize_default false;
    dispatch ~jobs
      (fun () -> spec machine kernel program_file interlock tree)
      Service.Request.Verify
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Run the generated proof obligations and the checkers.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ jobs_arg $ no_opt_arg))

let proof_cmd =
  let run machine kernel program_file interlock tree jobs =
    dispatch ~jobs
      (fun () -> spec machine kernel program_file interlock tree)
      Service.Request.Proof
  in
  Cmd.v
    (Cmd.info "proof"
       ~doc:"Emit the PVS-style proof theory with discharge annotations.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ jobs_arg))

let run_cmd =
  let diagram_arg =
    let doc = "Print the instruction/cycle pipeline diagram." in
    Cmdliner.Arg.(value & flag & info [ "diagram"; "d" ] ~doc)
  in
  let run machine kernel program_file interlock tree diagram =
    guard @@ fun () ->
    let s = common machine kernel program_file interlock tree in
    let result =
      if diagram then begin
        let d, result =
          Pipeline.Diagram.capture ~stop_after:(sel_instructions s) (sel_tr s)
        in
        print_string d;
        result
      end
      else Workload.Sim.run s.Service.Handler.sim
    in
    let row =
      Workload.Sim.stats_row ~label:machine s.Service.Handler.sim
        result.Pipeline.Pipesem.stats
    in
    Format.printf "%a" Workload.Stats.pp_table [ row ];
    (match result.Pipeline.Pipesem.outcome with
    | Pipeline.Pipesem.Completed -> ()
    | Pipeline.Pipesem.Deadlocked -> raise (Failed_check "simulation deadlocked")
    | Pipeline.Pipesem.Out_of_cycles ->
      raise (Failed_check "simulation ran out of cycles"));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate the pipelined machine and report CPI.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ diagram_arg))

let trace_cmd =
  let out_arg =
    let doc = "Output VCD file." in
    Cmdliner.Arg.(
      value & opt string "pipeline.vcd" & info [ "output"; "o" ] ~docv:"FILE" ~doc)
  in
  let run machine kernel program_file interlock tree out =
    guard @@ fun () ->
    let s = common machine kernel program_file interlock tree in
    let result = Workload.Sim.trace_vcd ~path:out s.Service.Handler.sim in
    Format.printf "wrote %s (%d cycles, %d instructions)@." out
      result.Pipeline.Pipesem.stats.Pipeline.Pipesem.cycles
      result.Pipeline.Pipesem.stats.Pipeline.Pipesem.retired;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Simulate and dump a VCD waveform of the stall engine.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ out_arg))

let dot_cmd =
  let run machine kernel program_file interlock tree =
    guard @@ fun () ->
    let s = common machine kernel program_file interlock tree in
    print_string (Pipeline.Dot.forwarding_graph (sel_tr s));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:
         "Emit a Graphviz diagram of the pipeline and its forwarding paths.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg))

let plan_cmd =
  let dump_arg =
    let doc = "Dump the full before/after instruction tapes." in
    Cmdliner.Arg.(value & flag & info [ "dump" ] ~doc)
  in
  let run machine kernel program_file interlock tree dump =
    guard @@ fun () ->
    let s = common machine kernel program_file interlock tree in
    let tr = sel_tr s in
    let before =
      Pipeline.Pipesem.plan (Pipeline.Pipesem.compile ~optimize:false tr)
    in
    let after = Hw.Plan.optimize ~count:false before in
    let hot =
      Pipeline.Pipesem.plan
        (Pipeline.Pipesem.compile ~optimize:true ~observe:false tr)
    in
    let pp_stats name p =
      Format.printf "%s:@." name;
      List.iter
        (fun (k, v) -> Format.printf "  %-16s %6d@." k v)
        (Hw.Plan.stats p)
    in
    pp_stats "unoptimized" before;
    pp_stats "optimized (observable)" after;
    pp_stats "optimized (hot path)" hot;
    let fold name p =
      let bi = Hw.Plan.n_instrs before and ai = Hw.Plan.n_instrs p in
      let bs = Hw.Plan.n_slots before and as_ = Hw.Plan.n_slots p in
      Format.printf
        "%s: folded %d of %d instrs (%.1f%%), killed %d of %d slots@." name
        (bi - ai) bi
        (100. *. float_of_int (bi - ai) /. float_of_int (max 1 bi))
        (bs - as_) bs
    in
    fold "observable" after;
    fold "hot path" hot;
    if dump then begin
      Format.printf "@.== unoptimized tape ==@.%a" Hw.Plan.pp before;
      Format.printf "@.== optimized tape (observable) ==@.%a" Hw.Plan.pp after;
      Format.printf "@.== optimized tape (hot path) ==@.%a" Hw.Plan.pp hot
    end;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Show what the plan optimizer does to this machine's evaluation \
          tape: per-opcode histograms before and after the \
          fold/kill/compact pass, and (with --dump) both full tapes.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ dump_arg))

let machine_opt_arg =
  let doc =
    Printf.sprintf "Machine to transform (%s)." (String.concat ", " machines)
  in
  Arg.(
    value & opt string "dlx5" & info [ "machine"; "m" ] ~docv:"MACHINE" ~doc)

let stats_cmd =
  let json_arg =
    let doc = "Emit the hazard summary as JSON on stdout." in
    Cmdliner.Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run machine kernel program_file interlock tree json =
    let print =
      if not json then Service.Response.text
      else
        function
        | Service.Response.Stats_report { summary; _ } ->
          Obs.Json.to_string summary ^ "\n"
        | p -> Service.Response.text p
    in
    dispatch ~print
      (fun () -> spec machine kernel program_file interlock tree)
      Service.Request.Stats
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Simulate with hazard attribution and print the CPI decomposition \
          (CPI = 1 + stall components, exact cycle accounting).")
    Term.(
      ret
        (const run $ machine_opt_arg $ kernel_arg $ program_arg
       $ interlock_arg $ tree_arg $ json_arg))

let profile_cmd =
  let out_arg =
    let doc = "Output trace-event JSON file (Perfetto / chrome://tracing)." in
    Cmdliner.Arg.(
      value
      & opt string "pipegen_trace.json"
      & info [ "output"; "o" ] ~docv:"FILE" ~doc)
  in
  let run machine kernel program_file interlock tree out jobs =
    guard @@ fun () ->
    Obs.Span.set_enabled true;
    let s = common machine kernel program_file interlock tree in
    let (_ : Pipeline.Pipesem.result) = Workload.Sim.run s.Service.Handler.sim in
    let v =
      with_jobs jobs @@ fun pool ->
      Core.verify ?reference:s.Service.Handler.reference ?pool
        ~max_instructions:(sel_instructions s)
        ~compiled:(Workload.Sim.compiled s.Service.Handler.sim)
        (sel_tr s)
    in
    let records = Obs.Span.records () in
    Obs.Trace_event.write_file ~path:out ~process_name:"pipegen" records;
    Format.printf "wrote %s (%d spans, verified=%b)@." out
      (List.length records) (Core.verified v);
    `Ok ()
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run transform, simulation and verification with phase profiling \
          enabled and write a Chrome trace-event JSON.")
    Term.(
      ret
        (const run $ machine_opt_arg $ kernel_arg $ program_arg
       $ interlock_arg $ tree_arg $ out_arg $ jobs_arg))

let symbolic_cmd =
  let insn_arg =
    let doc = "Number of instructions to prove (BDD sizes grow with it)." in
    Cmdliner.Arg.(value & opt int 8 & info [ "instructions"; "n" ] ~doc)
  in
  let run machine kernel program_file interlock tree insns =
    guard @@ fun () ->
    let s = common machine kernel program_file interlock tree in
    let outcome =
      Proof_engine.Symsim.check
        ~instructions:(min insns (sel_instructions s))
        (sel_tr s)
    in
    Format.printf "%a@." Proof_engine.Symsim.pp_outcome outcome;
    match outcome with
    | Proof_engine.Symsim.Proved _ -> `Ok ()
    | Proof_engine.Symsim.Control_depends_on_data _ -> `Ok ()
    | Proof_engine.Symsim.Mismatch _ ->
      raise (Failed_check "symbolic co-simulation found a mismatch")
  in
  Cmd.v
    (Cmd.info "symbolic"
       ~doc:
         "Prove data consistency for all initial register-file contents at           once (symbolic co-simulation).")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ insn_arg))

let campaign_cmd =
  let seed_arg =
    let doc = "Random seed for mutant enumeration and sampling." in
    Cmdliner.Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let mutants_arg =
    let doc = "Run at most $(docv) mutants (a seeded-shuffle sample)." in
    Cmdliner.Arg.(
      value & opt (some int) None & info [ "mutants"; "n" ] ~docv:"N" ~doc)
  in
  let transients_arg =
    let doc = "Number of seeded transient bit-flip mutants." in
    Cmdliner.Arg.(value & opt int 8 & info [ "transients" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc =
      "Per-mutant budget in seconds; a mutant past it is cancelled \
       cooperatively and classified timed_out."
    in
    Cmdliner.Arg.(value & opt float 30.0 & info [ "timeout" ] ~docv:"SEC" ~doc)
  in
  let hang_arg =
    let doc =
      "Include the wedged-engine mutant (spins until the timeout fires)."
    in
    Cmdliner.Arg.(value & flag & info [ "hang" ] ~doc)
  in
  let bmc_arg =
    let doc =
      "Add an exhaustive program sweep per mutant (toy3 only: every program \
       over a small alphabet)."
    in
    Cmdliner.Arg.(value & flag & info [ "bmc" ] ~doc)
  in
  let checkpoint_arg =
    let doc = "JSON checkpoint file, rewritten after every batch." in
    Cmdliner.Arg.(
      value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let resume_arg =
    let doc = "Skip mutants already classified in the checkpoint file." in
    Cmdliner.Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let json_arg =
    let doc = "Emit the outcomes as JSON on stdout." in
    Cmdliner.Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run machine kernel program_file interlock tree jobs seed mutants
      transients timeout hang bmc checkpoint resume json =
    let print =
      if not json then Service.Response.text
      else
        function
        | Service.Response.Campaign_report { outcomes; _ } ->
          Obs.Json.to_string outcomes ^ "\n"
        | p -> Service.Response.text p
    in
    dispatch ~jobs ?checkpoint ~resume ~print
      (fun () -> spec machine kernel program_file interlock tree)
      (Service.Request.Campaign
         { seed; mutants; transients; hang; timeout_s = timeout; bmc })
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Fault-injection detection-coverage campaign: mutate the generated \
          pipeline control, run the verification stack against every mutant, \
          and fail on any mutant that corrupts architectural state without \
          being detected.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ jobs_arg $ seed_arg $ mutants_arg $ transients_arg
       $ timeout_arg $ hang_arg $ bmc_arg $ checkpoint_arg $ resume_arg
       $ json_arg))

let sweep_cmd =
  let axis_arg =
    let doc = "Sweep axis: dependency (operand bias) or branch (taken rate)." in
    Cmdliner.Arg.(
      value
      & opt
          (enum
             [
               ("dependency", Service.Request.Dependency);
               ("branch", Service.Request.Branch);
             ])
          Service.Request.Dependency
      & info [ "axis" ] ~docv:"AXIS" ~doc)
  in
  let points_arg =
    let doc = "Sweep points (dependency biases / taken fractions)." in
    Cmdliner.Arg.(
      value
      & opt (list float) [ 0.0; 0.25; 0.5; 0.75; 1.0 ]
      & info [ "points" ] ~docv:"P,P,..." ~doc)
  in
  let length_arg =
    let doc = "Generated program length (instructions)." in
    Cmdliner.Arg.(value & opt int 32 & info [ "length" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "Random seed for program generation." in
    Cmdliner.Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let lanes_arg =
    let doc =
      "Drive the verified sweep points through the bit-parallel lane engine \
       (up to 62 points per machine word).  The rows are bit-identical to \
       the scalar sweep."
    in
    Cmdliner.Arg.(value & flag & info [ "lanes" ] ~doc)
  in
  let run machine kernel program_file interlock tree jobs axis points length
      seed lanes =
    dispatch ~jobs
      (fun () -> spec machine kernel program_file interlock tree)
      (Service.Request.Sweep { axis; points; length; seed; lanes })
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "CPI as a function of a workload parameter: generate a program per \
          point, simulate and verify it on the selected machine (compiled \
          once per shape), and print the metric table.")
    Term.(
      ret
        (const run $ machine_arg $ kernel_arg $ program_arg $ interlock_arg
       $ tree_arg $ jobs_arg $ axis_arg $ points_arg $ length_arg $ seed_arg
       $ lanes_arg))

let serve_cmd =
  let timeout_arg =
    let doc = "Per-request budget in seconds (unbounded when absent)." in
    Cmdliner.Arg.(
      value & opt (some float) None & info [ "timeout" ] ~docv:"SEC" ~doc)
  in
  let capacity_arg =
    let doc = "Verdict-cache capacity (entries, FIFO eviction)." in
    Cmdliner.Arg.(value & opt int 256 & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let metrics_arg =
    let doc = "Write the service metrics (JSON) to $(docv) on exit." in
    Cmdliner.Arg.(
      value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let socket_arg =
    let doc = "Serve on this Unix socket instead of stdin/stdout." in
    Cmdliner.Arg.(
      value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let journal_arg =
    let doc =
      "Write-ahead request journal: admitted requests and completed \
       responses are appended (and fsync'd) here, and an existing journal \
       is replayed on startup — completed responses re-emitted verbatim, \
       unfinished requests re-evaluated."
    in
    Cmdliner.Arg.(
      value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)
  in
  let max_queue_arg =
    let doc =
      "Admission bound: requests beyond this many distinct evaluations per \
       batch are shed with a typed overloaded response."
    in
    Cmdliner.Arg.(value & opt int 256 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let retries_arg =
    let doc =
      "Retry budget for transient evaluation failures (exponential \
       backoff; evaluation is pure, so re-running is safe)."
    in
    Cmdliner.Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let chaos_arg =
    let doc =
      "Arm the seeded fault injector on the evaluation pool.  $(docv) is \
       SEED[,key=value,...] with keys crash, delay, delay_ms, wedge, \
       wedge_ms, alloc, alloc_kwords, kill and matching *_budget caps, \
       e.g. --chaos 42,crash=0.2,crash_budget=2,delay=0.3."
    in
    Cmdliner.Arg.(
      value & opt (some string) None & info [ "chaos" ] ~docv:"SPEC" ~doc)
  in
  let run jobs timeout_s capacity metrics_out socket journal max_queue retries
      chaos =
    guard @@ fun () ->
    if jobs < 1 then
      raise (Service.Handler.Invalid_request "-j must be at least 1");
    if max_queue < 1 then
      raise (Service.Handler.Invalid_request "--max-queue must be at least 1");
    if retries < 0 then
      raise (Service.Handler.Invalid_request "--retries must be non-negative");
    let chaos =
      match chaos with
      | None -> None
      | Some spec -> (
        match Exec.Chaos.config_of_string spec with
        | Ok c -> Some c
        | Error msg -> raise (Service.Handler.Invalid_request msg))
    in
    let config =
      {
        Service.Serve.jobs;
        timeout_s;
        capacity;
        metrics_out;
        socket;
        journal;
        max_queue;
        retries;
        chaos;
      }
    in
    match Service.Serve.run ~config () with 0 -> `Ok () | n -> exit n
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running verification service: read one JSON request per line \
          (stdin or a Unix socket), answer with one JSON response per line \
          in input order.  Identical requests coalesce, repeated requests \
          are answered from a content-addressed verdict cache, and each \
          request runs isolated under a per-request timeout.  With \
          --journal the service is crash-safe: a killed server replays its \
          write-ahead journal on restart.  --max-queue bounds admission \
          (overloaded responses carry retry-after), --chaos arms seeded \
          fault injection for robustness testing.")
    Term.(
      ret
        (const run $ jobs_arg $ timeout_arg $ capacity_arg $ metrics_arg
       $ socket_arg $ journal_arg $ max_queue_arg $ retries_arg $ chaos_arg))

let perf_cmd =
  let history_arg =
    let doc =
      "History file to read (default: BENCH_history.jsonl at the repository \
       root)."
    in
    Cmdliner.Arg.(
      value
      & opt (some string) None
      & info [ "history" ] ~docv:"FILE" ~doc)
  in
  let diff_arg =
    let doc =
      "Diff two records instead of printing trends.  $(docv) selects a \
       record: a negative index from the end (-1 = newest), a non-negative \
       index from the start, or a commit prefix.  Give the flag twice."
    in
    Cmdliner.Arg.(
      value & opt_all string [] & info [ "diff" ] ~docv:"REC" ~doc)
  in
  let window_arg =
    let doc = "Trend window: span the last $(docv) records." in
    Cmdliner.Arg.(value & opt int 10 & info [ "last" ] ~docv:"K" ~doc)
  in
  let run history diff k =
    guard @@ fun () ->
    let usage msg = raise (Service.Handler.Invalid_request msg) in
    let path =
      match history with Some p -> p | None -> Obs.History.default_path ()
    in
    if not (Sys.file_exists path) then
      usage
        (Printf.sprintf
           "no history at %s (seed it with `bench --smoke --history` or \
            `dune build @check`)"
           path);
    let records =
      match Obs.History.read ~path with
      | Ok r -> r
      | Error msg -> raise (Failed_check msg)
    in
    (match diff with
    | [] ->
      Format.printf "perf history %s@." path;
      Format.printf "%a" (Obs.History.pp_trends ~k) records
    | [ a; b ] ->
      let sel spec =
        match Obs.History.select records spec with
        | Ok r -> r
        | Error msg -> usage msg
      in
      let ra = sel a and rb = sel b in
      let rows = Obs.History.diff ra rb in
      if rows = [] then
        Format.printf "records %s and %s carry identical metrics@."
          ra.Obs.History.commit rb.Obs.History.commit
      else Format.printf "%a" (Obs.History.pp_diff ~a:ra ~b:rb) rows
    | _ -> usage "--diff takes exactly two selectors (repeat the flag)");
    `Ok ()
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "Report trends from the per-commit bench history \
          (BENCH_history.jsonl): deterministic WORK.* scores, timing rows \
          and scheduling counters over the last K records, or an exact diff \
          of any two records.")
    Term.(ret (const run $ history_arg $ diff_arg $ window_arg))

let () =
  let info =
    Cmd.info "pipegen" ~version:"1.0"
      ~doc:
        "Automated pipeline design: transform a prepared sequential machine \
         into a pipelined machine with synthesized forwarding and interlock."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ show_cmd; verilog_cmd; verify_cmd; proof_cmd; run_cmd; stats_cmd;
            profile_cmd; trace_cmd; dot_cmd; plan_cmd; symbolic_cmd;
            campaign_cmd; sweep_cmd; serve_cmd; perf_cmd ]))
